"""E12 — the paper's corpus magnitudes: 23 deals, ~15,000 documents.

Most quality benches run on the 12-deal Table 2 subset for speed; this
one rebuilds the full Section 4 experimental corpus (23 IT-services
activities, ~15,000 workbook documents) and checks the Figure 4 counts
land in the paper's order of magnitude, plus reports end-to-end build
cost at that scale.
"""

import pytest

from repro import CorpusConfig, CorpusGenerator, EILSystem
from repro.eval import run_fig4, run_table2


@pytest.fixture(scope="module")
def paper_corpus():
    return CorpusGenerator(CorpusConfig.paper_scale()).generate()


def test_paper_scale_fig4(benchmark, paper_corpus, report_writer):
    corpus = paper_corpus

    def build():
        return EILSystem.build(corpus)

    eil = benchmark.pedantic(build, rounds=1, iterations=1)
    globals()["_PAPER_EIL"] = eil
    report = run_fig4(corpus, eil)

    lines = [
        "E12: Figure 4 at the paper's corpus scale "
        "(23 deals / ~15,000 documents)",
        f"corpus documents                 : {report.total_docs} "
        "(paper: ~15,000)",
        f'keyword "End User Services"/EUS  : {report.plain_docs} '
        "documents (paper: 261)",
        f"keyword with subtypes spelled    : {report.expanded_docs} "
        "documents (paper: 1132)",
        f"blow-up factor                   : "
        f"{report.expanded_docs / report.plain_docs:.1f}x (paper: 4.3x)",
        f"EIL concept search               : {report.eil_deals} deals "
        "of 23",
        f"offline build                    : "
        f"{eil.build_report.documents_indexed} docs indexed, "
        f"{eil.build_report.documents_failed} failures",
    ]
    report_writer("E12_paper_scale", "\n".join(lines))

    # The paper's magnitudes: hundreds of plain hits, low thousands
    # once subtypes are expanded, a 2-6x blow-up, and an EIL answer in
    # tens of activities at most.
    assert 100 <= report.plain_docs <= 1000
    assert 500 <= report.expanded_docs <= 4000
    assert 2.0 <= report.expanded_docs / report.plain_docs <= 6.0
    assert report.eil_deals <= 23
    assert eil.build_report.documents_failed == 0


def test_paper_scale_table2(benchmark, paper_corpus, report_writer):
    """Table 2 at the paper's full 23-deal corpus size."""
    eil = globals().get("_PAPER_EIL") or EILSystem.build(paper_corpus)

    report = benchmark.pedantic(
        run_table2, args=(paper_corpus, eil), rounds=1, iterations=1
    )
    eil_f, keyword_f = report.mean_f()
    lines = [
        "E12: Table 2 rerun at the paper's corpus scale (23 deals, "
        f"{paper_corpus.document_count} docs)",
        f"mean F: EIL {eil_f:.2f} vs keyword {keyword_f:.2f}",
        f"EIL wins on F: {report.eil_wins()}/{len(report.rows)}",
    ]
    report_writer("E12_paper_scale_table2", "\n".join(lines))
    assert eil_f > keyword_f
    assert report.eil_wins() >= 7
