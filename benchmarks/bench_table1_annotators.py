"""E2 — Table 1: the five annotator types, quantified.

The paper's Table 1 is qualitative guidance (advantages/limitations per
annotator type).  This bench makes it quantitative on the synthetic
corpus: each annotator type runs over the same workbooks and is scored
on the extraction task it is suited for, demonstrating each row's
trade-off:

* regex        — contact details (emails): simple, precise, shallow.
* heuristics   — person+role pairs in prose: fast, data-set dependent.
* ontology     — service scopes: strong, bounded by taxonomy quality.
* classifier   — win-strategy section detection: needs training data.
* composite    — the full pipeline's contact lists: the combination wins.

Per-type wall-clock throughput is benchmarked on the document-level
pass.
"""

import pytest

from repro.annotators import (
    ContactRollup,
    NaiveBayesClassifier,
    OntologyServiceAnnotator,
    PersonHeuristicAnnotator,
    ScopeAggregator,
    SectionClassifierAnnotator,
    SocialNetworkingAnnotator,
    build_contact_annotator,
    register_eil_types,
)
from repro.docmodel import DocumentParser, register_structure_types
from repro.eval import evaluate_sets
from repro.uima import (
    AggregateAnalysisEngine,
    CollectionProcessingEngine,
    TypeSystem,
)


@pytest.fixture(scope="module")
def cases(corpus_small):
    type_system = TypeSystem()
    register_structure_types(type_system)
    register_eil_types(type_system)
    parser = DocumentParser(type_system)
    return [
        parser.to_cas(document)
        for document in corpus_small.collection.all_documents()
    ]


def fresh_cases(corpus_small):
    type_system = TypeSystem()
    register_structure_types(type_system)
    register_eil_types(type_system)
    parser = DocumentParser(type_system)
    return [
        parser.to_cas(document)
        for document in corpus_small.collection.all_documents()
    ]


def run_engine_over(engine, cases):
    for cas in cases:
        engine.run(cas)
    return cases


class TestAnnotatorTypes:
    def test_regex_contact_extraction(self, benchmark, corpus_small,
                                      report_writer):
        cases = fresh_cases(corpus_small)
        annotator = build_contact_annotator()
        benchmark.pedantic(run_engine_over, args=(annotator, cases),
                           rounds=1, iterations=1)
        scores = []
        for deal in corpus_small.deals:
            truth = {m.person.email for m in deal.team}
            extracted = {
                str(a["address"])
                for cas in cases
                if cas.metadata.get("deal_id") == deal.deal_id
                for a in cas.select("eil.Email")
                if not str(a["address"]).startswith("sales-dl")
            }
            scores.append(evaluate_sets(extracted, truth))
        mean_p = sum(s.precision for s in scores) / len(scores)
        mean_r = sum(s.recall for s in scores) / len(scores)
        report_writer(
            "E2_regex",
            "E2 (Table 1, regex): email extraction per deal\n"
            f"mean precision={mean_p:.2f} mean recall={mean_r:.2f}",
        )
        # Regex row: precise but recall-limited (rosters omit emails).
        assert mean_p >= 0.9
        assert mean_r >= 0.5

    def test_heuristics_person_extraction(self, benchmark, corpus_small,
                                          report_writer):
        cases = fresh_cases(corpus_small)
        annotator = PersonHeuristicAnnotator()
        benchmark.pedantic(run_engine_over, args=(annotator, cases),
                           rounds=1, iterations=1)
        all_team = {
            m.person.full_name
            for deal in corpus_small.deals
            for m in deal.team
        }
        extracted = {
            str(a["name"])
            for cas in cases
            for a in cas.select("eil.Person")
        }
        precision = (
            len(extracted & all_team) / len(extracted) if extracted else 1.0
        )
        report_writer(
            "E2_heuristics",
            "E2 (Table 1, heuristics): person+role pairs in prose\n"
            f"extracted={len(extracted)} precision={precision:.2f} "
            "(ad-hoc rules: precise on known conventions, blind "
            "elsewhere)",
        )
        assert precision >= 0.85

    def test_ontology_scope_extraction(self, benchmark, corpus_small,
                                       report_writer):
        cases = fresh_cases(corpus_small)
        annotator = OntologyServiceAnnotator(corpus_small.taxonomy)
        aggregator = ScopeAggregator()
        cpe = CollectionProcessingEngine(annotator, [aggregator])
        report = benchmark.pedantic(cpe.run, args=(cases,), rounds=1,
                                    iterations=1)
        scopes = report.consumer_results["scope-aggregator"]
        scores = []
        for deal in corpus_small.deals:
            extracted = {
                e.canonical for e in scopes.get(deal.deal_id, [])
            }
            scores.append(evaluate_sets(extracted, set(deal.towers)))
        mean_p = sum(s.precision for s in scores) / len(scores)
        mean_r = sum(s.recall for s in scores) / len(scores)
        report_writer(
            "E2_ontology",
            "E2 (Table 1, ontology): scope extraction per deal\n"
            f"mean precision={mean_p:.2f} mean recall={mean_r:.2f} "
            "(bounded by taxonomy + significance threshold)",
        )
        assert mean_p >= 0.75
        assert mean_r >= 0.7

    def test_classifier_strategy_detection(self, benchmark, corpus_small,
                                           report_writer):
        # Train on the first half of deals, evaluate on the second.
        deals = corpus_small.deals
        half = len(deals) // 2
        train_ids = {d.deal_id for d in deals[:half]}

        def label_for(document):
            return (
                "strategy"
                if "Win Strategies" in document.title
                else "other"
            )

        train, test = [], []
        for document in corpus_small.collection.all_documents():
            if document.doc_type != "text":
                continue
            text = " ".join(body for _, body in document.sections)
            example = (text, label_for(document))
            (train if document.deal_id in train_ids else test).append(
                example
            )
        classifier = NaiveBayesClassifier()
        classifier.train(train)

        def evaluate():
            return sum(
                1 for text, label in test
                if classifier.predict(text) == label
            ) / len(test)

        accuracy = benchmark.pedantic(evaluate, rounds=1, iterations=1)
        report_writer(
            "E2_classifier",
            "E2 (Table 1, classifier): win-strategy document detection\n"
            f"train={len(train)} test={len(test)} "
            f"accuracy={accuracy:.2f} (bounded by training data)",
        )
        assert accuracy >= 0.9

    def test_composite_pipeline_contacts(self, benchmark, corpus_small,
                                         report_writer):
        cases = fresh_cases(corpus_small)
        aggregate = AggregateAnalysisEngine(
            "social", [build_contact_annotator(),
                       PersonHeuristicAnnotator(),
                       SocialNetworkingAnnotator()]
        )
        rollup = ContactRollup(corpus_small.directory)
        cpe = CollectionProcessingEngine(aggregate, [rollup])
        report = benchmark.pedantic(cpe.run, args=(cases,), rounds=1,
                                    iterations=1)
        contacts = report.consumer_results["contact-rollup"]
        scores = []
        for deal in corpus_small.deals:
            truth = {m.person.full_name for m in deal.team}
            extracted = {
                c.name for c in contacts.get(deal.deal_id, [])
            }
            scores.append(evaluate_sets(extracted, truth))
        mean_p = sum(s.precision for s in scores) / len(scores)
        mean_r = sum(s.recall for s in scores) / len(scores)
        report_writer(
            "E2_composite",
            "E2 (Table 1, composite): full contact pipeline per deal\n"
            f"mean precision={mean_p:.2f} mean recall={mean_r:.2f} "
            "(the combination beats every primitive alone)",
        )
        # The composite must dominate: near-perfect team recovery.
        assert mean_p >= 0.9
        assert mean_r >= 0.9
