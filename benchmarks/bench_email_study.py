"""E1 — Section 2 email-study distribution (paper's 38/17/36/29%, 63/120).

Regenerates the requirements-study numbers: classify the 120-thread
distribution list and report each meta-query's share next to the paper's
figure, plus the social-networking solicitation count.
"""

from repro.eval import MetaQueryClassifier

PAPER = {"mq1": 38.0, "mq2": 17.0, "mq3": 36.0, "mq4": 29.0}


def test_email_study_distribution(benchmark, corpus_small, report_writer):
    classifier = MetaQueryClassifier()
    report = benchmark(classifier.run_study, corpus_small.threads)

    lines = [
        "E1: Email-study distribution (paper Section 2)",
        f"{'meta-query':12s} {'measured':>10s} {'paper':>8s}",
    ]
    for meta_query, paper_pct in PAPER.items():
        lines.append(
            f"{meta_query:12s} {report.percentage(meta_query):9.1f}% "
            f"{paper_pct:7.1f}%"
        )
    lines.append(
        f"social-networking threads: {report.social_count}/"
        f"{report.total} (paper: 63/120)"
    )
    lines.append(
        f"classifier agreement with ground truth: "
        f"{report.label_accuracy:.0%}"
    )
    report_writer("E1_email_study", "\n".join(lines))

    # Shape assertions: within 2 points of the paper on every share.
    for meta_query, paper_pct in PAPER.items():
        assert abs(report.percentage(meta_query) - paper_pct) <= 2.0
    assert report.social_count == 63
