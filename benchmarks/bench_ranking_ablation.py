"""E10 — Ablation of Fig. 1's design choices: scoping + rank combination.

Three policies answer the same hybrid (service, technology) queries:
synopsis-only (concept search, no keyword evidence), unscoped keyword
(the "search-box" policy), and the full combined EIL algorithm.  Scored
by NDCG@10 with graded relevance and by F-measure against the strict
hybrid-intent truth.  The shape: combined wins both, unscoped keyword
pays for cross-family technology ambiguity.
"""

from repro.eval import run_ranking_ablation


def test_ranking_ablation(benchmark, corpus_table2, eil_table2,
                          report_writer):
    report = benchmark.pedantic(
        run_ranking_ablation, args=(corpus_table2, eil_table2),
        rounds=1, iterations=1,
    )
    lines = [
        "E10: ranking/scoping ablation over "
        f"{report.queries} hybrid queries",
        f"{'policy':22s} {'NDCG@10':>8s} {'F':>6s}",
    ]
    for label, (ndcg_value, f_value) in (
        ("synopsis-only", report.synopsis_only),
        ("unscoped keyword", report.unscoped_keyword),
        ("combined (EIL)", report.combined),
    ):
        lines.append(f"{label:22s} {ndcg_value:8.3f} {f_value:6.3f}")
    report_writer("E10_ablation", "\n".join(lines))

    # Shape: the full algorithm dominates both single-source policies
    # on set quality, and is at least as good on ordering.
    assert report.combined[1] >= report.synopsis_only[1]
    assert report.combined[1] >= report.unscoped_keyword[1]
    assert report.combined[0] >= report.unscoped_keyword[0] - 1e-9
