"""E5 — Figures 5 & 6: EIL scope search results and the deal synopsis.

Regenerates the two EIL views the paper screenshots: the ranked deal
list with each deal's towers ordered by significance (Figure 5) and the
full synopsis of the top deal (Figure 6).  Asserts the Figure 5
invariant that the queried service family appears in every returned
deal's tower list, with tower order following extraction significance.
"""

from repro.core import render_deal_list, render_synopsis, scope_query
from repro.security import User

USER = User("bench", frozenset({"sales"}))


def test_fig5_scope_search_and_synopsis(benchmark, corpus_table2,
                                        eil_table2, report_writer):
    results = benchmark(
        eil_table2.search, scope_query("End User Services"), USER
    )
    synopses = [
        eil_table2.synopsis(activity.deal_id, USER)
        for activity in results.activities
    ]
    lines = [
        "E5: Figure 5 - EIL search results for End User Services",
        render_deal_list(synopses),
    ]
    if synopses:
        lines.append("")
        lines.append("E5: Figure 6 - synopsis of the top deal")
        lines.append(render_synopsis(synopses[0]))
    report_writer("E5_fig5_fig6", "\n".join(lines))

    assert results.activities, "the corpus must contain EUS deals"
    family = {
        node.name
        for node in corpus_table2.taxonomy.expand("End User Services")
    }
    for synopsis in synopses:
        assert family & set(synopsis.towers)
    # Figure 6 content: overview + people + strategies all populated.
    top = synopses[0]
    assert top.overview["Customer name"]
    assert top.contacts()
    assert top.win_strategies
