"""E4 — Figure 4: keyword hit-count blow-up for "End User Services".

The paper: 261 documents for the bare query, 1132 once the subtypes
(Customer Services Center, Distributed Computing Services) are spelled
out — versus a handful of *deals* from EIL.  Absolute counts depend on
corpus size; the shape is (a) expanding subtypes multiplies the reading
list several-fold, and (b) EIL returns an answer two orders of magnitude
smaller in units the user actually wants (activities, not documents).
"""

from repro.eval import run_fig4


def test_fig4_blowup(benchmark, corpus_table2, eil_table2, report_writer):
    report = benchmark.pedantic(
        run_fig4, args=(corpus_table2, eil_table2), rounds=1, iterations=1
    )
    ratio = (
        report.expanded_docs / report.plain_docs
        if report.plain_docs
        else float("inf")
    )
    lines = [
        "E4: Figure 4 - keyword blow-up for End User Services",
        f"corpus size                      : {report.total_docs} documents",
        f'keyword "End User Services"/EUS  : {report.plain_docs} documents '
        "(paper: 261)",
        f"keyword with subtypes spelled    : {report.expanded_docs} "
        "documents (paper: 1132)",
        f"blow-up factor                   : {ratio:.1f}x (paper: 4.3x)",
        f"EIL concept search               : {report.eil_deals} deals",
    ]
    report_writer("E4_fig4", "\n".join(lines))

    # Shape: subtype expansion multiplies the keyword reading list and
    # EIL's activity count stays far below the document counts.
    assert report.expanded_docs >= 2 * report.plain_docs
    assert report.eil_deals < report.plain_docs
