"""E3 — Table 2: EIL vs OmniFind-style keyword search, P/R/F on 10 queries.

The headline experiment.  Ten scope queries run over a 12-deal corpus;
each system's retrieved deal set is scored against the generator's
ground truth (replacing the paper's domain expert).  The paper's shape:
keyword recall is (almost always) 1.0 with much lower precision, so EIL
wins on F-measure for most queries.
"""

from repro.eval import run_table2


def test_table2_eil_vs_keyword(benchmark, corpus_table2, eil_table2,
                               report_writer):
    report = benchmark.pedantic(
        run_table2, args=(corpus_table2, eil_table2), rounds=1, iterations=1
    )

    lines = [
        "E3: Table 2 - quality of EIL search vs keyword (KW) search",
        f"{'query':36s} {'EIL P':>6s} {'EIL R':>6s} {'EIL F':>6s} "
        f"{'KW P':>6s} {'KW R':>6s} {'KW F':>6s}",
    ]
    for row in report.rows:
        lines.append(
            f"{row.query:36s} {row.eil.precision:6.2f} "
            f"{row.eil.recall:6.2f} {row.eil.f_measure:6.2f} "
            f"{row.keyword.precision:6.2f} {row.keyword.recall:6.2f} "
            f"{row.keyword.f_measure:6.2f}"
        )
    eil_f, keyword_f = report.mean_f()
    lines.append(
        f"{'MEAN':36s} {'':6s} {'':6s} {eil_f:6.2f} {'':6s} {'':6s} "
        f"{keyword_f:6.2f}"
    )
    lines.append(
        f"EIL wins on F-measure: {report.eil_wins()}/{len(report.rows)} "
        "(paper: 8/10)"
    )
    report_writer("E3_table2", "\n".join(lines))

    # Paper shape: EIL mean F clearly above keyword; EIL wins most
    # queries; keyword recall is 1.0 on the overwhelming majority.
    assert eil_f > keyword_f
    assert report.eil_wins() >= 7
    keyword_recall_perfect = sum(
        1 for row in report.rows if row.keyword.recall == 1.0
    )
    assert keyword_recall_perfect >= 8
