"""E9 — production rollout scale (paper Section 4, closing).

The paper reports the production system covering ~1000 engagements and
500k+ documents.  This bench sweeps corpus size (proportionally scaled
down to keep the suite fast) and measures the two costs that dominate a
rollout: offline build throughput (index + annotate + populate) and
online query latency — which must stay roughly flat in corpus size for
the synopsis-first architecture to make sense.
"""

import time

import pytest

from repro import CorpusConfig, CorpusGenerator, EILSystem
from repro.core import scope_query, service_keyword_query
from repro.security import User

USER = User("bench", frozenset({"sales"}))

SCALES = [4, 8, 16]

_RESULTS = {}


@pytest.mark.parametrize("n_deals", SCALES)
def test_offline_build_throughput(benchmark, n_deals):
    corpus = CorpusGenerator(
        CorpusConfig(seed=2008, n_deals=n_deals, docs_per_deal=40)
    ).generate()

    def build():
        return EILSystem.build(corpus)

    eil = benchmark.pedantic(build, rounds=1, iterations=1)
    _RESULTS[n_deals] = (corpus, eil)
    assert eil.build_report.documents_failed == 0
    assert eil.build_report.deals_populated == n_deals


@pytest.mark.parametrize("n_deals", SCALES)
def test_online_query_latency(benchmark, n_deals):
    if n_deals not in _RESULTS:  # pragma: no cover - ordering guard
        corpus = CorpusGenerator(
            CorpusConfig(seed=2008, n_deals=n_deals, docs_per_deal=40)
        ).generate()
        _RESULTS[n_deals] = (corpus, EILSystem.build(corpus))
    corpus, eil = _RESULTS[n_deals]

    def query():
        eil.search(scope_query("End User Services"), USER)
        eil.search(
            service_keyword_query("Storage Management Services",
                                  "data replication"),
            USER,
        )

    benchmark(query)


def test_scale_report(benchmark, report_writer):
    def build_report() -> str:
        lines = [
            "E9: rollout scale sweep (offline build + online query)",
            f"{'deals':>6s} {'docs':>7s} {'build s':>8s} {'docs/s':>8s} "
            f"{'query ms':>9s}",
        ]
        for n_deals in SCALES:
            if n_deals not in _RESULTS:
                continue
            corpus, _ = _RESULTS[n_deals]
            start = time.perf_counter()
            fresh = EILSystem.build(corpus)
            build_seconds = time.perf_counter() - start
            start = time.perf_counter()
            rounds = 5
            for _ in range(rounds):
                fresh.search(scope_query("End User Services"), USER)
            query_ms = (time.perf_counter() - start) / rounds * 1000
            docs = corpus.document_count
            lines.append(
                f"{n_deals:6d} {docs:7d} {build_seconds:8.2f} "
                f"{docs / build_seconds:8.0f} {query_ms:9.2f}"
            )
        return "\n".join(lines)

    text = benchmark.pedantic(build_report, rounds=1, iterations=1)
    report_writer("E9_scale", text)
