"""Offline build + query cache bench: ``BENCH_offline_build.json``.

Measures the offline-build executors and the online cache:

* **offline** — wall-clock and docs/sec for the full offline pipeline
  (crawl + parse/annotate + populate) across the three execution
  modes.  Two views land in the JSON:

  - an **executor ablation** (``serial`` vs ``threads`` vs
    ``processes`` at the same worker count), asserting every mode
    produces identical ``AnalysisResults``;
  - a **throughput trajectory** for the ``processes`` executor —
    docs/sec at 1, 2, 4, ... workers — the scaling curve a multi-core
    host climbs and a single-core host honestly flatlines on.

  On a single-core runner neither pool can beat serial: threads
  serialize on the GIL (~1.0x) and processes add pickling overhead on
  top, so recorded speedups at or below 1.0x are expected there.  The
  determinism guarantee — identical results at any width, any mode —
  is what the suite enforces; the throughput numbers are recorded
  honestly either way.

* **online** — cold vs. warm latency for the business-activity driven
  search and the keyword baseline: the first execution of each query
  misses the LRU cache, every repeat hits it.

Run standalone (CI smoke uses ``--smoke``)::

    PYTHONPATH=src python benchmarks/bench_offline_build.py [--smoke]

or under pytest, where it asserts the JSON is well-formed::

    PYTHONPATH=src python -m pytest benchmarks/bench_offline_build.py
"""

from __future__ import annotations

import argparse
import json
import pathlib
import time
from typing import Dict, List, Optional

from repro import CorpusConfig, CorpusGenerator, EILSystem, obs
from repro.core.metaqueries import (
    role_capacity_query,
    scope_query,
    service_keyword_query,
    worked_with_query,
)
from repro.security.access import User

DEFAULT_OUT = pathlib.Path(__file__).resolve().parent.parent / (
    "BENCH_offline_build.json"
)
_USER = User("bench", frozenset({"sales"}))


def _time_build(corpus, workers: int,
                executor: Optional[str] = None) -> Dict[str, object]:
    started = time.perf_counter()
    eil = EILSystem.build(corpus, workers=workers, executor=executor)
    elapsed = time.perf_counter() - started
    return {
        "eil": eil,
        "seconds": elapsed,
        "docs_per_second": (
            eil.build_report.documents_indexed / elapsed
            if elapsed else 0.0
        ),
    }


def _trajectory_widths(workers: int) -> List[int]:
    """Doubling worker counts up to ``workers``: 1, 2, 4, ..."""
    widths = [1]
    while widths[-1] * 2 <= workers:
        widths.append(widths[-1] * 2)
    if widths[-1] != workers:
        widths.append(workers)
    return widths


def _query_forms(corpus):
    member = corpus.deals[0].team[0]
    return [
        ("concept", scope_query("End User Services")),
        ("people", worked_with_query(member.person.full_name)),
        ("role", role_capacity_query("cross tower TSA")),
        ("hybrid", service_keyword_query("Storage Management Services",
                                         "data replication")),
    ]


def _cold_warm(eil: EILSystem, corpus, warm_rounds: int):
    """Per query class: one cold (miss) sample, ``warm_rounds`` hits."""
    cold: Dict[str, float] = {}
    warm: Dict[str, List[float]] = {}
    for name, form in _query_forms(corpus):
        started = time.perf_counter()
        eil.search(form, _USER)
        cold[name] = time.perf_counter() - started
        samples = []
        for _ in range(warm_rounds):
            started = time.perf_counter()
            eil.search(form, _USER)
            samples.append(time.perf_counter() - started)
        warm[name] = samples
    started = time.perf_counter()
    eil.keyword_search("end user services")
    cold["keyword_baseline"] = time.perf_counter() - started
    samples = []
    for _ in range(warm_rounds):
        started = time.perf_counter()
        eil.keyword_search("end user services")
        samples.append(time.perf_counter() - started)
    warm["keyword_baseline"] = samples
    return cold, warm


def run_bench(
    deals: int = 10,
    docs: int = 32,
    workers: int = 4,
    warm_rounds: int = 20,
    seed: int = 2008,
    out_path: pathlib.Path = DEFAULT_OUT,
) -> Dict[str, object]:
    """Ablate executors, trace the scaling curve, write the JSON."""
    registry = obs.MetricsRegistry()
    with obs.use_registry(registry):
        corpus = CorpusGenerator(
            CorpusConfig(seed=seed, n_deals=deals, docs_per_deal=docs)
        ).generate()
        serial = _time_build(corpus, workers=1, executor="serial")
        serial_s = serial["seconds"]
        serial_results = serial["eil"].analysis_results

        ablation: Dict[str, Dict[str, object]] = {
            "serial": {
                "workers": 1,
                "seconds": serial_s,
                "docs_per_second": serial["docs_per_second"],
                "speedup": 1.0,
                "results_identical": True,
            }
        }
        for mode in ("threads", "processes"):
            run = _time_build(corpus, workers=workers, executor=mode)
            ablation[mode] = {
                "workers": workers,
                "seconds": run["seconds"],
                "docs_per_second": run["docs_per_second"],
                "speedup": (
                    serial_s / run["seconds"] if run["seconds"] else 0.0
                ),
                "results_identical": (
                    run["eil"].analysis_results == serial_results
                ),
            }
            if mode == "processes":
                query_system = run["eil"]

        trajectory: List[Dict[str, object]] = []
        for width in _trajectory_widths(workers):
            run = _time_build(corpus, workers=width,
                              executor="processes" if width > 1
                              else "serial")
            trajectory.append({
                "executor": "processes" if width > 1 else "serial",
                "workers": width,
                "seconds": run["seconds"],
                "docs_per_second": run["docs_per_second"],
                "speedup": (
                    serial_s / run["seconds"] if run["seconds"] else 0.0
                ),
            })

        cold, warm = _cold_warm(query_system, corpus, warm_rounds)

    cold_mean = sum(cold.values()) / len(cold)
    warm_all = [s for samples in warm.values() for s in samples]
    warm_mean = sum(warm_all) / len(warm_all)
    hits = registry.counters.get("query.cache.hits")
    misses = registry.counters.get("query.cache.misses")
    threads = ablation["threads"]
    report: Dict[str, object] = {
        "bench": "offline_build",
        "schema_version": 2,
        "created_unix": time.time(),
        "corpus": {
            "seed": seed,
            "deals": deals,
            "docs_per_deal": docs,
            "documents_indexed":
                serial["eil"].build_report.documents_indexed,
        },
        "offline": {
            "workers": workers,
            "serial_seconds": serial_s,
            "serial_docs_per_second": serial["docs_per_second"],
            "executor_ablation": ablation,
            "throughput_trajectory": trajectory,
            # Back-compat fields: the thread-pool comparison older
            # tooling read from schema 1.
            "parallel_seconds": threads["seconds"],
            "speedup": threads["speedup"],
            "results_identical": all(
                entry["results_identical"] for entry in ablation.values()
            ),
        },
        "online": {
            "warm_rounds": warm_rounds,
            "cold_mean_ms": cold_mean * 1000.0,
            "warm_mean_ms": warm_mean * 1000.0,
            "cold_over_warm": (
                cold_mean / warm_mean if warm_mean else 0.0
            ),
            "cold_ms_per_class": {
                name: seconds * 1000.0 for name, seconds in cold.items()
            },
            "warm_mean_ms_per_class": {
                name: sum(samples) / len(samples) * 1000.0
                for name, samples in warm.items()
            },
            "cache": {
                "hits": hits.value if hits else 0,
                "misses": misses.value if misses else 0,
            },
        },
    }
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    return report


def test_bench_offline_build(report_writer):
    """Pytest entry: run a small bench and sanity-check the JSON."""
    report = run_bench(deals=4, docs=14, workers=2, warm_rounds=5)
    offline = report["offline"]
    online = report["online"]
    assert offline["results_identical"] is True
    assert offline["serial_seconds"] > 0
    assert offline["serial_docs_per_second"] > 0
    ablation = offline["executor_ablation"]
    assert set(ablation) == {"serial", "threads", "processes"}
    for entry in ablation.values():
        assert entry["results_identical"] is True
        assert entry["docs_per_second"] > 0
    trajectory = offline["throughput_trajectory"]
    assert [point["workers"] for point in trajectory] == [1, 2]
    for point in trajectory:
        assert point["docs_per_second"] > 0
    assert online["cache"]["hits"] > 0
    assert DEFAULT_OUT.exists()
    parsed = json.loads(DEFAULT_OUT.read_text())
    assert parsed["bench"] == "offline_build"
    assert parsed["schema_version"] == 2
    assert parsed["offline"]["throughput_trajectory"]
    processes = ablation["processes"]
    lines = [
        "E14: process-sharded offline build + query cache",
        f"serial build {offline['serial_seconds']:.2f}s "
        f"({offline['serial_docs_per_second']:.0f} docs/s); "
        f"{processes['workers']}-worker processes build "
        f"{processes['seconds']:.2f}s "
        f"(speedup {processes['speedup']:.2f}x, identical results: "
        f"{offline['results_identical']})",
        "trajectory: " + ", ".join(
            f"{point['workers']}w {point['docs_per_second']:.0f} docs/s"
            for point in trajectory
        ),
        f"query cold {online['cold_mean_ms']:.2f}ms vs warm "
        f"{online['warm_mean_ms']:.3f}ms "
        f"({online['cold_over_warm']:.0f}x; "
        f"{online['cache']['hits']} hits / "
        f"{online['cache']['misses']} misses)",
    ]
    report_writer("E14_offline_build", "\n".join(lines))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--deals", type=int, default=10)
    parser.add_argument("--docs", type=int, default=32)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--warm-rounds", type=int, default=20)
    parser.add_argument("--seed", type=int, default=2008)
    parser.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUT)
    parser.add_argument("--smoke", action="store_true",
                        help="small corpus + few rounds (CI smoke)")
    args = parser.parse_args()
    if args.smoke:
        args.deals, args.docs, args.warm_rounds = 4, 14, 5
        args.workers = min(args.workers, 2)
    report = run_bench(args.deals, args.docs, args.workers,
                       args.warm_rounds, args.seed, args.out)
    offline = report["offline"]
    online = report["online"]
    print(f"wrote {args.out}")
    print(f"serial build    : {offline['serial_seconds']:.2f}s "
          f"({offline['serial_docs_per_second']:.0f} docs/s)")
    for mode in ("threads", "processes"):
        entry = offline["executor_ablation"][mode]
        print(f"{mode:<10} x{entry['workers']}   : "
              f"{entry['seconds']:.2f}s "
              f"({entry['docs_per_second']:.0f} docs/s, "
              f"speedup {entry['speedup']:.2f}x)")
    print("trajectory      : " + ", ".join(
        f"{point['workers']}w={point['docs_per_second']:.0f} docs/s"
        for point in offline["throughput_trajectory"]
    ))
    print(f"results identical: {offline['results_identical']}")
    print(f"query cold mean : {online['cold_mean_ms']:.2f}ms")
    print(f"query warm mean : {online['warm_mean_ms']:.3f}ms "
          f"({online['cold_over_warm']:.0f}x faster; "
          f"{online['cache']['hits']} hits, "
          f"{online['cache']['misses']} misses)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
