"""Offline build + query cache bench: ``BENCH_offline_build.json``.

Measures the two tentpole paths of the parallel-build/caching PR:

* **offline** — wall-clock for the full offline pipeline (crawl +
  parse/annotate + populate) serial vs. ``--workers N``, asserting the
  two builds produce identical ``AnalysisResults``.  The parse+annotate
  stage fans across a thread pool; on a single-core host the recorded
  speedup hovers around 1.0x (Python's GIL serializes the CPU-bound
  annotators) — the number is recorded honestly either way, and the
  determinism guarantee is what the suite enforces.
* **online** — cold vs. warm latency for the business-activity driven
  search and the keyword baseline: the first execution of each query
  misses the LRU cache, every repeat hits it.

Run standalone (CI smoke uses ``--smoke``)::

    PYTHONPATH=src python benchmarks/bench_offline_build.py [--smoke]

or under pytest, where it asserts the JSON is well-formed::

    PYTHONPATH=src python -m pytest benchmarks/bench_offline_build.py
"""

from __future__ import annotations

import argparse
import json
import pathlib
import time
from typing import Dict, List

from repro import CorpusConfig, CorpusGenerator, EILSystem, obs
from repro.core.metaqueries import (
    role_capacity_query,
    scope_query,
    service_keyword_query,
    worked_with_query,
)
from repro.security.access import User

DEFAULT_OUT = pathlib.Path(__file__).resolve().parent.parent / (
    "BENCH_offline_build.json"
)
_USER = User("bench", frozenset({"sales"}))


def _time_build(corpus, workers: int) -> Dict[str, object]:
    started = time.perf_counter()
    eil = EILSystem.build(corpus, workers=workers)
    elapsed = time.perf_counter() - started
    return {"eil": eil, "seconds": elapsed}


def _query_forms(corpus):
    member = corpus.deals[0].team[0]
    return [
        ("concept", scope_query("End User Services")),
        ("people", worked_with_query(member.person.full_name)),
        ("role", role_capacity_query("cross tower TSA")),
        ("hybrid", service_keyword_query("Storage Management Services",
                                         "data replication")),
    ]


def _cold_warm(eil: EILSystem, corpus, warm_rounds: int):
    """Per query class: one cold (miss) sample, ``warm_rounds`` hits."""
    cold: Dict[str, float] = {}
    warm: Dict[str, List[float]] = {}
    for name, form in _query_forms(corpus):
        started = time.perf_counter()
        eil.search(form, _USER)
        cold[name] = time.perf_counter() - started
        samples = []
        for _ in range(warm_rounds):
            started = time.perf_counter()
            eil.search(form, _USER)
            samples.append(time.perf_counter() - started)
        warm[name] = samples
    started = time.perf_counter()
    eil.keyword_search("end user services")
    cold["keyword_baseline"] = time.perf_counter() - started
    samples = []
    for _ in range(warm_rounds):
        started = time.perf_counter()
        eil.keyword_search("end user services")
        samples.append(time.perf_counter() - started)
    warm["keyword_baseline"] = samples
    return cold, warm


def run_bench(
    deals: int = 10,
    docs: int = 32,
    workers: int = 4,
    warm_rounds: int = 20,
    seed: int = 2008,
    out_path: pathlib.Path = DEFAULT_OUT,
) -> Dict[str, object]:
    """Build serial + parallel, measure cache latency, write the JSON."""
    registry = obs.MetricsRegistry()
    with obs.use_registry(registry):
        corpus = CorpusGenerator(
            CorpusConfig(seed=seed, n_deals=deals, docs_per_deal=docs)
        ).generate()
        serial = _time_build(corpus, workers=1)
        parallel = _time_build(corpus, workers=workers)
        identical = (
            serial["eil"].analysis_results
            == parallel["eil"].analysis_results
        )
        cold, warm = _cold_warm(parallel["eil"], corpus, warm_rounds)

    serial_s = serial["seconds"]
    parallel_s = parallel["seconds"]
    cold_mean = sum(cold.values()) / len(cold)
    warm_all = [s for samples in warm.values() for s in samples]
    warm_mean = sum(warm_all) / len(warm_all)
    hits = registry.counters.get("query.cache.hits")
    misses = registry.counters.get("query.cache.misses")
    report: Dict[str, object] = {
        "bench": "offline_build",
        "schema_version": 1,
        "created_unix": time.time(),
        "corpus": {
            "seed": seed,
            "deals": deals,
            "docs_per_deal": docs,
            "documents_indexed":
                serial["eil"].build_report.documents_indexed,
        },
        "offline": {
            "workers": workers,
            "serial_seconds": serial_s,
            "parallel_seconds": parallel_s,
            "speedup": serial_s / parallel_s if parallel_s else 0.0,
            "results_identical": identical,
        },
        "online": {
            "warm_rounds": warm_rounds,
            "cold_mean_ms": cold_mean * 1000.0,
            "warm_mean_ms": warm_mean * 1000.0,
            "cold_over_warm": (
                cold_mean / warm_mean if warm_mean else 0.0
            ),
            "cold_ms_per_class": {
                name: seconds * 1000.0 for name, seconds in cold.items()
            },
            "warm_mean_ms_per_class": {
                name: sum(samples) / len(samples) * 1000.0
                for name, samples in warm.items()
            },
            "cache": {
                "hits": hits.value if hits else 0,
                "misses": misses.value if misses else 0,
            },
        },
    }
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    return report


def test_bench_offline_build(report_writer):
    """Pytest entry: run a small bench and sanity-check the JSON."""
    report = run_bench(deals=4, docs=14, workers=2, warm_rounds=5)
    offline = report["offline"]
    online = report["online"]
    assert offline["results_identical"] is True
    assert offline["serial_seconds"] > 0
    assert offline["parallel_seconds"] > 0
    assert online["cache"]["hits"] > 0
    assert DEFAULT_OUT.exists()
    parsed = json.loads(DEFAULT_OUT.read_text())
    assert parsed["bench"] == "offline_build"
    lines = [
        "E14: parallel offline build + query cache",
        f"serial build {offline['serial_seconds']:.2f}s, "
        f"{offline['workers']}-worker build "
        f"{offline['parallel_seconds']:.2f}s "
        f"(speedup {offline['speedup']:.2f}x, identical results: "
        f"{offline['results_identical']})",
        f"query cold {online['cold_mean_ms']:.2f}ms vs warm "
        f"{online['warm_mean_ms']:.3f}ms "
        f"({online['cold_over_warm']:.0f}x; "
        f"{online['cache']['hits']} hits / "
        f"{online['cache']['misses']} misses)",
    ]
    report_writer("E14_offline_build", "\n".join(lines))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--deals", type=int, default=10)
    parser.add_argument("--docs", type=int, default=32)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--warm-rounds", type=int, default=20)
    parser.add_argument("--seed", type=int, default=2008)
    parser.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUT)
    parser.add_argument("--smoke", action="store_true",
                        help="small corpus + few rounds (CI smoke)")
    args = parser.parse_args()
    if args.smoke:
        args.deals, args.docs, args.warm_rounds = 4, 14, 5
        args.workers = min(args.workers, 2)
    report = run_bench(args.deals, args.docs, args.workers,
                       args.warm_rounds, args.seed, args.out)
    offline = report["offline"]
    online = report["online"]
    print(f"wrote {args.out}")
    print(f"serial build    : {offline['serial_seconds']:.2f}s")
    print(f"{offline['workers']}-worker build  : "
          f"{offline['parallel_seconds']:.2f}s "
          f"(speedup {offline['speedup']:.2f}x)")
    print(f"results identical: {offline['results_identical']}")
    print(f"query cold mean : {online['cold_mean_ms']:.2f}ms")
    print(f"query warm mean : {online['warm_mean_ms']:.3f}ms "
          f"({online['cold_over_warm']:.0f}x faster; "
          f"{online['cache']['hits']} hits, "
          f"{online['cache']['misses']} misses)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
