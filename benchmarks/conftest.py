"""Shared fixtures for the benchmark suite.

Two corpus scales are shared session-wide:

* ``small``   — 8 deals x 28 docs: micro-benchmarks of single operations.
* ``table2``  — 12 deals x 80 docs (the paper's Table 2 subset shape):
  the quality experiments.

Every bench writes its paper-shaped report to ``benchmarks/out/<name>.txt``
(pytest captures stdout, so the files are the canonical record) and also
prints it for ``-s`` runs.
"""

from __future__ import annotations

import pathlib

import pytest

from repro import CorpusConfig, CorpusGenerator, EILSystem

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def corpus_small():
    return CorpusGenerator(
        CorpusConfig(seed=2008, n_deals=8, docs_per_deal=28)
    ).generate()


@pytest.fixture(scope="session")
def eil_small(corpus_small):
    return EILSystem.build(corpus_small)


@pytest.fixture(scope="session")
def corpus_table2():
    return CorpusGenerator(CorpusConfig.table2_scale()).generate()


@pytest.fixture(scope="session")
def eil_table2(corpus_table2):
    return EILSystem.build(corpus_table2)


@pytest.fixture(scope="session")
def report_writer():
    """Callable(name, text): persist + print one bench's report."""
    OUT_DIR.mkdir(exist_ok=True)

    def write(name: str, text: str) -> None:
        (OUT_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return write
