"""E11 — Section 3.3 ablation: structure-preserving parsing vs blob-of-text.

The paper claims that *"leveraging the process conventions on the
title/headers and semi-structured format (rows and cells) ... would
perform better than just blindly applying patterns interpreting the
entire data as a blob of text."*  Both approaches are implemented here
(`SocialNetworkingAnnotator` reads the parser's structure annotations;
`CooccurrenceSocialAnnotator` is the structure-blind alternative the
paper sketches), so the claim becomes measurable: per-deal contact-list
precision/recall of each against ground truth.
"""

from repro.annotators import (
    ContactRollup,
    CooccurrenceSocialAnnotator,
    SocialNetworkingAnnotator,
    register_eil_types,
)
from repro.docmodel import DocumentParser, register_structure_types
from repro.eval import evaluate_sets
from repro.uima import CollectionProcessingEngine, TypeSystem


def fresh_cases(corpus):
    type_system = TypeSystem()
    register_structure_types(type_system)
    register_eil_types(type_system)
    parser = DocumentParser(type_system)
    return [
        parser.to_cas(document)
        for document in corpus.collection.all_documents()
    ]


def contact_quality(corpus, annotator):
    rollup = ContactRollup(corpus.directory)
    cpe = CollectionProcessingEngine(annotator, [rollup])
    cpe.run(fresh_cases(corpus))
    contacts = rollup.collection_process_complete()
    precisions, recalls = [], []
    for deal in corpus.deals:
        truth = {m.person.full_name for m in deal.team}
        extracted = {c.name for c in contacts.get(deal.deal_id, [])}
        scores = evaluate_sets(extracted, truth)
        precisions.append(scores.precision)
        recalls.append(scores.recall)
    return (
        sum(precisions) / len(precisions),
        sum(recalls) / len(recalls),
    )


def test_structure_vs_blob(benchmark, corpus_small, report_writer):
    def run_both():
        structured = contact_quality(
            corpus_small, SocialNetworkingAnnotator()
        )
        blob = contact_quality(
            corpus_small, CooccurrenceSocialAnnotator()
        )
        return structured, blob

    (structured, blob) = benchmark.pedantic(run_both, rounds=1,
                                            iterations=1)
    lines = [
        "E11: structure-preserving parsing vs blob-of-text "
        "(paper Section 3.3)",
        f"{'approach':28s} {'precision':>10s} {'recall':>8s}",
        f"{'structure-aware (EIL)':28s} {structured[0]:10.2f} "
        f"{structured[1]:8.2f}",
        f"{'co-occurrence over blob':28s} {blob[0]:10.2f} "
        f"{blob[1]:8.2f}",
    ]
    report_writer("E11_structure_ablation", "\n".join(lines))

    # The paper's claim, quantified: structure wins on both axes,
    # decisively on precision.
    assert structured[0] > blob[0] + 0.2
    assert structured[1] >= blob[1]
