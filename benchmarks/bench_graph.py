"""Entity-graph query bench: ``BENCH_graph.json``.

Measures the promises of the entity graph (``repro.graph``) at the
paper's 100k-document scale:

* **streaming materialization** — ``CorpusGenerator.iter_workbooks()``
  feeds one workbook at a time through the annotator pipeline
  (:class:`~repro.core.analysis.InformationAnalysis`), the organized
  store, and :func:`~repro.graph.index_deal_from_organized`.  No
  inverted index is built: the graph reads only synopsis rows, so the
  bench isolates analysis + materialization cost.  Records docs/sec,
  graph size, and RSS before/after.

* **query latency** — p50/p95 wall-clock per meta-query class
  (worked-with, role-capacity, expertise, team-overlap) over query
  inputs sampled from the stored rows, at a graph covering 1000 deals.

* **equivalence** — for a sample of worked-with and role-capacity
  answers, the deal sets are recomputed directly from the relational
  ``contacts`` rows (the Social Networking Annotator's rollup) and must
  match the graph's answers exactly.  This is the MQ2/MQ3 consistency
  claim from the acceptance criteria, asserted at full scale.

Run standalone (CI smoke uses ``--smoke``)::

    PYTHONPATH=src python benchmarks/bench_graph.py [--smoke]

or under pytest, where it asserts the JSON is well-formed::

    PYTHONPATH=src python -m pytest benchmarks/bench_graph.py
"""

from __future__ import annotations

import argparse
import json
import pathlib
import random
import resource
import time
from typing import Dict, List, Tuple

from repro import CorpusConfig, CorpusGenerator
from repro.core.analysis import InformationAnalysis
from repro.core.organized import OrganizedInformation
from repro.corpus import build_default_taxonomy
from repro.docmodel.repository import WorkbookCollection
from repro.graph import EntityGraph, index_deal_from_organized
from repro.graph.model import person_key

DEFAULT_OUT = pathlib.Path(__file__).resolve().parent.parent / (
    "BENCH_graph.json"
)
QUERY_CLASSES = ("worked_with", "role_capacity", "expertise",
                 "team_overlap")


def _rss_mb() -> float:
    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return usage / 1024.0  # linux reports KiB


def _percentile(samples: List[float], pct: float) -> float:
    ordered = sorted(samples)
    index = max(0, int(round(pct / 100.0 * len(ordered) + 0.5)) - 1)
    return ordered[min(index, len(ordered) - 1)]


def _stream_build(
    deals: int, docs: int, seed: int
) -> Tuple[EntityGraph, OrganizedInformation, Dict[str, object]]:
    """Stream-generate, analyze and graph ``deals`` workbooks."""
    analysis = InformationAnalysis(build_default_taxonomy())
    organized = OrganizedInformation()
    graph = EntityGraph()
    rss_before = _rss_mb()
    generator = CorpusGenerator(
        CorpusConfig(seed=seed, n_deals=deals, docs_per_deal=docs)
    )
    started = time.perf_counter()
    documents = 0
    for workbook in generator.iter_workbooks():
        deal_id = workbook.deal_id
        results = analysis.analyze(WorkbookCollection([workbook]))
        organized.store_deal_context(
            deal_id, results.context.get(deal_id, {})
        )
        organized.store_scopes(deal_id, results.scopes.get(deal_id, []))
        organized.store_contacts(deal_id,
                                 results.contacts.get(deal_id, []))
        organized.store_technologies(
            deal_id, results.technologies.get(deal_id, [])
        )
        index_deal_from_organized(graph, organized, deal_id)
        documents += results.documents_processed
    build_seconds = time.perf_counter() - started
    stats = graph.stats()
    result = {
        "deals": deals,
        "docs_per_deal": docs,
        "documents": documents,
        "build_seconds": build_seconds,
        "docs_per_second": (
            documents / build_seconds if build_seconds else 0.0
        ),
        "nodes": stats["nodes"],
        "edges": stats["edges"],
        "nodes_by_kind": stats["nodes_by_kind"],
        "edges_by_kind": stats["edges_by_kind"],
        "rss_before_mb": rss_before,
        "rss_after_mb": _rss_mb(),
    }
    return graph, organized, result


def _sample_inputs(
    graph: EntityGraph,
    organized: OrganizedInformation,
    seed: int,
    per_class: int,
) -> Dict[str, List[object]]:
    """Draw query inputs for each class from the stored rows."""
    rng = random.Random(seed)
    names: List[str] = []
    roles: List[str] = []
    topics: List[str] = []
    for deal_id in graph.deal_ids():
        for row in organized.contacts_of(deal_id):
            if row["name"]:
                names.append(str(row["name"]))
            if row["role"]:
                roles.append(str(row["role"]))
        for scope in organized.scopes_of(deal_id):
            if scope["tower"]:
                topics.append(str(scope["tower"]))
        for tech in organized.technologies_of(deal_id):
            if tech["term"]:
                topics.append(str(tech["term"]))
    names = sorted(set(names))
    roles = sorted(set(roles))
    topics = sorted(set(topics))

    def draw(pool: List[str], count: int) -> List[str]:
        return [pool[rng.randrange(len(pool))] for _ in range(count)]

    return {
        "worked_with": draw(names, per_class),
        "role_capacity": draw(roles, per_class),
        "expertise": draw(topics, per_class),
        "team_overlap": draw(names, per_class),
    }


def _time_queries(
    graph: EntityGraph, inputs: Dict[str, List[object]]
) -> Dict[str, Dict[str, float]]:
    """p50/p95 wall-clock (ms) per query class."""
    runners = {
        "worked_with": lambda arg: graph.worked_with(arg),
        "role_capacity": lambda arg: graph.role_capacity(arg),
        "expertise": lambda arg: graph.expertise(arg),
        "team_overlap": lambda arg: graph.team_overlap(arg),
    }
    latency: Dict[str, Dict[str, float]] = {}
    for klass in QUERY_CLASSES:
        samples = []
        for arg in inputs[klass]:
            started = time.perf_counter()
            runners[klass](arg)
            samples.append((time.perf_counter() - started) * 1000.0)
        latency[klass] = {
            "queries": len(samples),
            "p50_ms": _percentile(samples, 50.0),
            "p95_ms": _percentile(samples, 95.0),
            "max_ms": max(samples),
        }
    return latency


def _check_equivalence(
    graph: EntityGraph,
    organized: OrganizedInformation,
    inputs: Dict[str, List[object]],
    sample: int,
) -> Dict[str, object]:
    """Recompute sampled answers from the contacts rows and compare.

    One pass over every deal's contact list builds key → deals and
    role → key → deals maps; the graph's worked-with deal sets and
    role-capacity rosters must match them exactly.
    """
    key_deals: Dict[str, set] = {}
    role_deals: Dict[str, Dict[str, set]] = {}
    for deal_id in graph.deal_ids():
        for row in organized.contacts_of(deal_id):
            key = person_key(str(row["name"] or ""),
                             str(row["email"] or ""))
            if key is None:
                continue
            key_deals.setdefault(key, set()).add(deal_id)
            role = str(row["role"] or "").lower()
            if role:
                role_deals.setdefault(role, {}).setdefault(
                    key, set()
                ).add(deal_id)

    checked = 0
    for name in inputs["worked_with"][:sample]:
        answer = graph.worked_with(name)
        expected = sorted(
            set().union(*(key_deals.get(key, set())
                          for key in answer.persons))
        ) if answer.persons else []
        if answer.deals != expected:
            return {"checked": checked, "identical": False,
                    "failed": f"worked_with:{name}"}
        checked += 1
    for role in inputs["role_capacity"][:sample]:
        answer = graph.role_capacity(role)
        expected = role_deals.get(answer.role.lower(), {})
        if {p.key for p in answer.people} != set(expected):
            return {"checked": checked, "identical": False,
                    "failed": f"role_capacity:{role}"}
        for person in answer.people:
            if person.deals != sorted(expected[person.key]):
                return {"checked": checked, "identical": False,
                        "failed": f"role_capacity:{role}"}
        checked += 1
    return {"checked": checked, "identical": True}


def run_bench(
    deals: int = 1000,
    docs: int = 100,
    queries_per_class: int = 200,
    equivalence_sample: int = 25,
    seed: int = 2008,
    out_path: pathlib.Path = DEFAULT_OUT,
) -> Dict[str, object]:
    """Run the build, latency and equivalence measurements."""
    graph, organized, build = _stream_build(deals, docs, seed)
    inputs = _sample_inputs(graph, organized, seed, queries_per_class)
    latency = _time_queries(graph, inputs)
    equivalence = _check_equivalence(graph, organized, inputs,
                                     equivalence_sample)
    report: Dict[str, object] = {
        "bench": "graph",
        "schema_version": 1,
        "created_unix": time.time(),
        "corpus": {
            "seed": seed,
            "deals": deals,
            "docs_per_deal": docs,
            "documents": build["documents"],
        },
        "build": build,
        "latency": latency,
        "equivalence": equivalence,
    }
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    return report


def check_report(report: Dict[str, object]) -> None:
    """Schema + acceptance assertions shared by pytest and CI."""
    assert report["bench"] == "graph"
    assert report["schema_version"] == 1
    build = report["build"]
    assert build["documents"] > 0
    assert build["docs_per_second"] > 0
    assert build["nodes"] > 0 and build["edges"] > 0
    assert build["nodes_by_kind"]["person"] > 0
    assert build["edges_by_kind"]["member_of"] > 0
    latency = report["latency"]
    assert set(latency) == set(QUERY_CLASSES)
    for klass in QUERY_CLASSES:
        entry = latency[klass]
        assert entry["queries"] > 0
        assert 0 < entry["p50_ms"] <= entry["p95_ms"] <= entry["max_ms"]
    equivalence = report["equivalence"]
    assert equivalence["checked"] > 0
    assert equivalence["identical"] is True, (
        "graph answers diverged from the contact rows: "
        f"{equivalence.get('failed')}"
    )


def test_bench_graph(report_writer):
    """Pytest entry: run a small bench and sanity-check the JSON."""
    report = run_bench(deals=12, docs=12, queries_per_class=40,
                       equivalence_sample=10)
    check_report(report)
    assert DEFAULT_OUT.exists()
    parsed = json.loads(DEFAULT_OUT.read_text())
    assert parsed["bench"] == "graph"
    build = report["build"]
    latency = report["latency"]
    equivalence = report["equivalence"]
    lines = [
        "E19: entity-graph people & role search",
        f"streamed {build['documents']} docs / {build['deals']} deals "
        f"into {build['nodes']} nodes, {build['edges']} edges in "
        f"{build['build_seconds']:.2f}s "
        f"({build['docs_per_second']:.0f} docs/s)",
    ] + [
        f"{klass}: p50 {latency[klass]['p50_ms']:.3f} ms, "
        f"p95 {latency[klass]['p95_ms']:.3f} ms "
        f"({latency[klass]['queries']} queries)"
        for klass in QUERY_CLASSES
    ] + [
        f"equivalence vs contact rows: {equivalence['checked']} answers "
        f"checked, identical: {equivalence['identical']}",
    ]
    report_writer("E19_graph", "\n".join(lines))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--deals", type=int, default=1000)
    parser.add_argument("--docs", type=int, default=100)
    parser.add_argument("--queries", type=int, default=200)
    parser.add_argument("--equivalence-sample", type=int, default=25)
    parser.add_argument("--seed", type=int, default=2008)
    parser.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUT)
    parser.add_argument("--smoke", action="store_true",
                        help="small scales for CI")
    args = parser.parse_args()
    if args.smoke:
        args.deals, args.docs = 12, 12
        args.queries, args.equivalence_sample = 40, 10
    report = run_bench(args.deals, args.docs, args.queries,
                       args.equivalence_sample, args.seed, args.out)
    check_report(report)
    build = report["build"]
    latency = report["latency"]
    equivalence = report["equivalence"]
    print(f"wrote {args.out}")
    print(f"build      : {build['documents']} docs / {build['deals']} "
          f"deals in {build['build_seconds']:.2f}s "
          f"({build['docs_per_second']:.0f} docs/s)")
    print(f"graph      : {build['nodes']} nodes, {build['edges']} edges "
          f"(RSS {build['rss_before_mb']:.0f} -> "
          f"{build['rss_after_mb']:.0f} MB)")
    for klass in QUERY_CLASSES:
        entry = latency[klass]
        print(f"{klass:<12}: p50 {entry['p50_ms']:.3f} ms, "
              f"p95 {entry['p95_ms']:.3f} ms over "
              f"{entry['queries']} queries")
    print(f"equivalence: {equivalence['checked']} answers checked, "
          f"identical: {equivalence['identical']}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
