"""E7 — Meta-query 3: role-capacity search and the empty-field trap.

The paper: keyword search for "cross tower TSA" returns 149 documents,
most of which merely contain the *field name* in a form schema with no
value behind it.  EIL queries the extracted contact lists instead.  The
shape: a large majority of keyword hits are useless (empty fields), and
EIL's people set matches the ground truth.
"""

from repro.eval import run_mq3


def test_mq3_role_capacity(benchmark, corpus_table2, eil_table2,
                           report_writer):
    report = benchmark.pedantic(
        run_mq3, args=(corpus_table2, eil_table2), rounds=1, iterations=1
    )
    useless = report.keyword_docs - report.keyword_useful_docs
    lines = [
        'E7: Meta-query 3 - "cross tower TSA" role search',
        f"keyword documents returned     : {report.keyword_docs} "
        "(paper: 149)",
        f"  with an actual value present : {report.keyword_useful_docs}",
        f"  empty schema fields (noise)  : {useless}",
        f"EIL deals with the role        : {len(report.eil_deals)}",
        f"EIL people found               : {sorted(report.eil_people)}",
        f"ground-truth people            : {sorted(report.truth_people)}",
    ]
    report_writer("E7_mq3", "\n".join(lines))

    # Shape: most keyword hits are empty-field noise; EIL recovers the
    # true role-holders with high fidelity.
    assert useless > report.keyword_useful_docs
    overlap = report.eil_people & report.truth_people
    assert len(overlap) >= 0.8 * len(report.truth_people)
