"""DB execution-engine bench: ``BENCH_db.json``.

Measures the SELECT engine overhaul (plan cache, join-aware planner,
compiled expressions, streaming aggregation) against the seed
row-at-a-time executor on a scaled join+rollup workload shaped like the
organized layer's synopsis schema (deals / deal_scopes / contacts).

Four engine configurations are ablated:

* ``naive``        — seed cost profile: no plan cache, every planner
                     feature off (re-parse + re-plan per execution).
* ``cache_only``   — plan cache on, planner features off.
* ``planner_only`` — planner features on, plan cache off.
* ``full``         — the production default.

Every configuration must return byte-identical rows for every workload
query (the planner can change speed, never results); the bench asserts
this before timing.  The headline number is the p50 speedup over the
pooled workload executions (the mix is point-lookup heavy, like the
synopsis store's real traffic), full vs naive; per-query p50 speedups
are reported alongside so the slow cases stay visible.  The acceptance
gate is >= 5x at full scale.  Timing interleaves the configurations
per execution so machine-load drift cannot bias the ratios.

Run standalone (CI smoke uses ``--smoke``)::

    PYTHONPATH=src python benchmarks/bench_db.py [--smoke]

or under pytest, where it runs at smoke scale and checks the JSON::

    PYTHONPATH=src python -m pytest benchmarks/bench_db.py
"""

from __future__ import annotations

import argparse
import json
import pathlib
import random
import statistics
import time
from typing import Dict, List, Sequence, Tuple

from repro.db import Database, PlannerOptions

DEFAULT_OUT = pathlib.Path(__file__).resolve().parent.parent / (
    "BENCH_db.json"
)

_INDUSTRIES = ["banking", "insurance", "retail", "telecom",
               "automotive", "energy", "pharma", "media"]
_TOWERS = ["WAN", "LAN", "HelpDesk", "Desktop", "Security", "Storage"]
_ROLES = ["CSE", "TSA", "DPE", "CFA"]

_SCHEMA = (
    """
    CREATE TABLE deals (
        deal_id TEXT, name TEXT NOT NULL, industry TEXT, value REAL,
        PRIMARY KEY (deal_id)
    )
    """,
    """
    CREATE TABLE deal_scopes (
        scope_id INTEGER, deal_id TEXT NOT NULL, tower TEXT,
        hours REAL, PRIMARY KEY (scope_id),
        FOREIGN KEY (deal_id) REFERENCES deals (deal_id)
    )
    """,
    """
    CREATE TABLE contacts (
        cid INTEGER, deal_id TEXT NOT NULL, nm TEXT, role TEXT,
        PRIMARY KEY (cid),
        FOREIGN KEY (deal_id) REFERENCES deals (deal_id)
    )
    """,
    "CREATE INDEX ix_deals_industry ON deals (industry)",
    "CREATE INDEX ix_scopes_deal ON deal_scopes (deal_id)",
    "CREATE INDEX ix_contacts_deal ON contacts (deal_id)",
)


def _populate(db: Database, deals: int, scopes_per_deal: int,
              contacts_per_deal: int, seed: int) -> None:
    rng = random.Random(seed)
    scope_id = contact_id = 0
    for i in range(deals):
        deal_id = f"d{i:05d}"
        db.execute(
            "INSERT INTO deals VALUES (?, ?, ?, ?)",
            [deal_id, f"DEAL {i}", _INDUSTRIES[i % len(_INDUSTRIES)],
             round(rng.uniform(1.0, 500.0), 2)],
        )
        for _ in range(scopes_per_deal):
            scope_id += 1
            db.execute(
                "INSERT INTO deal_scopes VALUES (?, ?, ?, ?)",
                [scope_id, deal_id, rng.choice(_TOWERS),
                 round(rng.uniform(10.0, 5000.0), 1)],
            )
        for _ in range(contacts_per_deal):
            contact_id += 1
            db.execute(
                "INSERT INTO contacts VALUES (?, ?, ?, ?)",
                [contact_id, deal_id, f"person{contact_id % 97}",
                 rng.choice(_ROLES)],
            )


def _configs() -> Dict[str, Tuple[PlannerOptions, int]]:
    """name -> (planner options, plan-cache capacity)."""
    return {
        "naive": (PlannerOptions.naive(), 0),
        "cache_only": (PlannerOptions.naive(), 128),
        "planner_only": (PlannerOptions(), 0),
        "full": (PlannerOptions(), 128),
    }


def _workload(deals: int) -> List[Tuple[str, str, List[Sequence[object]]]]:
    """(name, sql, param sets) — the scaled join+rollup mix."""
    rng = random.Random(7)
    deal_ids = [f"d{rng.randrange(deals):05d}" for _ in range(64)]
    return [
        ("deal_detail_join",
         "SELECT d.name, s.tower, s.hours FROM deals d "
         "JOIN deal_scopes s ON s.deal_id = d.deal_id "
         "WHERE d.deal_id = ?",
         [[deal_id] for deal_id in deal_ids]),
        ("deal_people_join",
         "SELECT c.nm, c.role FROM deals d "
         "JOIN contacts c ON c.deal_id = d.deal_id "
         "WHERE d.deal_id = ? ORDER BY c.cid",
         [[deal_id] for deal_id in deal_ids]),
        ("industry_filtered_join",
         "SELECT d.deal_id, s.tower FROM deals d "
         "JOIN deal_scopes s ON s.deal_id = d.deal_id "
         "WHERE d.industry = ? AND s.hours > 4000.0",
         [[industry] for industry in _INDUSTRIES]),
        ("deal_tower_rollup",
         "SELECT s.tower, count(*) n, sum(s.hours) total "
         "FROM deals d JOIN deal_scopes s ON s.deal_id = d.deal_id "
         "WHERE d.deal_id = ? GROUP BY s.tower ORDER BY total DESC",
         [[deal_id] for deal_id in deal_ids]),
        ("industry_rollup",
         "SELECT d.industry, count(*) n, sum(s.hours) total "
         "FROM deals d JOIN deal_scopes s ON s.deal_id = d.deal_id "
         "GROUP BY d.industry ORDER BY total DESC",
         [[]]),
        ("tower_topk",
         "SELECT s.tower, count(*) n, avg(s.hours) mean FROM deals d "
         "JOIN deal_scopes s ON s.deal_id = d.deal_id "
         "WHERE d.industry = ? GROUP BY s.tower "
         "ORDER BY n DESC LIMIT 3",
         [[industry] for industry in _INDUSTRIES]),
        ("value_topk",
         "SELECT deal_id, value FROM deals "
         "ORDER BY value DESC LIMIT 10",
         [[]]),
    ]


def _assert_equivalence(
    databases: Dict[str, Database],
    workload: List[Tuple[str, str, List[Sequence[object]]]],
) -> None:
    """Every configuration must agree with naive on rows + columns."""
    for name, sql, param_sets in workload:
        for params in param_sets:
            reference = databases["naive"].execute(sql, list(params))
            for config, db in databases.items():
                if config == "naive":
                    continue
                result = db.execute(sql, list(params))
                assert result.columns == reference.columns, (config, name)
                assert result.rows == reference.rows, (config, name)


def _time_workload(
    databases: Dict[str, Database],
    workload: List[Tuple[str, str, List[Sequence[object]]]],
    repetitions: int,
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Per-config timings, interleaved per execution.

    Configurations are timed back-to-back on each (query, params) pair
    rather than in separate blocks, so machine-load drift during the
    run biases every configuration equally and the reported speedup
    ratios stay stable across runs.
    """
    samples: Dict[str, Dict[str, List[float]]] = {
        config: {name: [] for name, _, _ in workload}
        for config in databases
    }
    for name, sql, param_sets in workload:
        for _ in range(repetitions):
            for params in param_sets:
                for config, db in databases.items():
                    started = time.perf_counter()
                    db.execute(sql, list(params))
                    samples[config][name].append(
                        time.perf_counter() - started
                    )
    timings: Dict[str, Dict[str, Dict[str, float]]] = {}
    for config, per_query in samples.items():
        timings[config] = {}
        pooled: List[float] = []
        for name, values in per_query.items():
            pooled.extend(values)
            values.sort()
            timings[config][name] = {
                "executions": len(values),
                "p50_us": statistics.median(values) * 1e6,
                "p95_us": values[int(len(values) * 0.95) - 1] * 1e6,
                "total_seconds": sum(values),
            }
        pooled.sort()
        timings[config]["__workload__"] = {
            "executions": len(pooled),
            "p50_us": statistics.median(pooled) * 1e6,
            "p95_us": pooled[int(len(pooled) * 0.95) - 1] * 1e6,
            "total_seconds": sum(pooled),
        }
    return timings


def run_bench(deals: int, scopes_per_deal: int, contacts_per_deal: int,
              repetitions: int, seed: int,
              out_path: pathlib.Path = DEFAULT_OUT,
              smoke: bool = False) -> Dict[str, object]:
    databases: Dict[str, Database] = {}
    for config, (options, capacity) in _configs().items():
        db = Database(planner_options=options, plan_cache=capacity)
        for statement in _SCHEMA:
            db.execute(statement)
        _populate(db, deals, scopes_per_deal, contacts_per_deal, seed)
        databases[config] = db

    workload = _workload(deals)
    _assert_equivalence(databases, workload)

    results = _time_workload(databases, workload, repetitions)

    speedups = {
        name: results["naive"][name]["p50_us"]
        / results["full"][name]["p50_us"]
        for name, _, _ in workload
    }
    # The headline: p50 over the pooled workload executions (the mix is
    # point-lookup heavy, like the synopsis store's real traffic).  The
    # per-query table above keeps the slow cases honest.
    workload_speedup = (
        results["naive"]["__workload__"]["p50_us"]
        / results["full"]["__workload__"]["p50_us"]
    )
    report: Dict[str, object] = {
        "bench": "db",
        "schema_version": 1,
        "created_unix": time.time(),
        "smoke": smoke,
        "scale": {
            "deals": deals,
            "scopes_per_deal": scopes_per_deal,
            "contacts_per_deal": contacts_per_deal,
            "repetitions": repetitions,
            "seed": seed,
        },
        "configs": {
            config: {"options": options.describe(), "plan_cache": capacity}
            for config, (options, capacity) in _configs().items()
        },
        "timings": results,
        "speedup_p50": speedups,
        "workload_speedup_p50": workload_speedup,
        "per_query_median_speedup": statistics.median(speedups.values()),
        "equivalent_rows": True,
    }
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    return report


def check_report(report: Dict[str, object]) -> None:
    """Schema + acceptance assertions shared by pytest and CI."""
    assert report["bench"] == "db"
    assert report["schema_version"] == 1
    assert report["equivalent_rows"] is True
    assert set(report["timings"]) == {
        "naive", "cache_only", "planner_only", "full"
    }
    for config, timings in report["timings"].items():
        for name, stats in timings.items():
            assert stats["p50_us"] > 0, (config, name)
            assert stats["executions"] > 0, (config, name)
    speedups = report["speedup_p50"]
    assert speedups, "workload must not be empty"
    floor = 1.0 if report["smoke"] else 5.0
    assert report["workload_speedup_p50"] >= floor, (
        f"workload p50 speedup {report['workload_speedup_p50']:.2f}x "
        f"below the {floor:.0f}x acceptance floor"
    )


def test_bench_db(report_writer):
    """Pytest entry: smoke-scale run + JSON sanity."""
    report = run_bench(deals=60, scopes_per_deal=4, contacts_per_deal=3,
                       repetitions=2, seed=2008, smoke=True)
    check_report(report)
    parsed = json.loads(DEFAULT_OUT.read_text())
    assert parsed["bench"] == "db"
    lines = ["E20: DB execution engine (plan cache + planner + streaming)"]
    for name, speedup in report["speedup_p50"].items():
        lines.append(f"{name}: {speedup:.1f}x p50 vs naive")
    lines.append(
        f"workload p50: {report['workload_speedup_p50']:.1f}x"
    )
    report_writer("E20_db_engine", "\n".join(lines))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--deals", type=int, default=400)
    parser.add_argument("--scopes", type=int, default=8)
    parser.add_argument("--contacts", type=int, default=6)
    parser.add_argument("--repetitions", type=int, default=5)
    parser.add_argument("--seed", type=int, default=2008)
    parser.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUT)
    parser.add_argument("--smoke", action="store_true",
                        help="small scales for CI")
    args = parser.parse_args()
    if args.smoke:
        args.deals, args.scopes, args.contacts = 60, 4, 3
        args.repetitions = 2
    report = run_bench(args.deals, args.scopes, args.contacts,
                       args.repetitions, args.seed, args.out,
                       smoke=args.smoke)
    check_report(report)
    print(f"wrote {args.out}")
    for name, speedup in report["speedup_p50"].items():
        naive = report["timings"]["naive"][name]["p50_us"]
        full = report["timings"]["full"][name]["p50_us"]
        print(f"{name:24s} naive {naive:9.1f}us  full {full:9.1f}us  "
              f"{speedup:6.1f}x")
    print(f"workload p50 speedup: "
          f"{report['workload_speedup_p50']:.1f}x "
          f"(per-query median {report['per_query_median_speedup']:.1f}x)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
