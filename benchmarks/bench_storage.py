"""Persistent storage bench: ``BENCH_storage.json``.

Measures the three promises of the segmented index store:

* **streaming build** — ``CorpusGenerator.iter_workbooks()`` feeds a
  directory-attached :class:`~repro.storage.SegmentBackedIndex` one
  workbook at a time, so a 100k+ document index builds in bounded
  memory (flushed segments spill to disk as they fill).  Records
  docs/sec, segment counts, and RSS before/after the loop — the
  "bounded" claim is the small RSS delta at large document counts.

* **bytes/doc vs the JSON baseline** — the segment files (delta-varint
  postings + docstore) against what a naive persistence layer would
  write: one JSON document of ``{doc_id: {fields, metadata}}`` plus the
  positional postings as JSON.  The bench asserts the segment format
  wins.

* **cold start vs rebuild** — wall-clock for ``EILSystem.load`` (read
  manifest + segments + synopsis DB) against ``EILSystem.build`` (full
  offline pipeline) over the same corpus, asserting rankings are
  bit-identical both at the engine level (streamed index) and the
  system level (form queries + keyword baseline).

Run standalone (CI smoke uses ``--smoke``)::

    PYTHONPATH=src python benchmarks/bench_storage.py [--smoke]

or under pytest, where it asserts the JSON is well-formed::

    PYTHONPATH=src python -m pytest benchmarks/bench_storage.py
"""

from __future__ import annotations

import argparse
import json
import pathlib
import resource
import shutil
import tempfile
import time
from typing import Dict, List

from repro import CorpusConfig, CorpusGenerator, EILSystem
from repro.core.acquisition import DataAcquisition
from repro.core.metaqueries import scope_query, service_keyword_query
from repro.docmodel.repository import WorkbookCollection
from repro.search.engine import SearchEngine
from repro.security.access import User
from repro.storage import SegmentBackedIndex

DEFAULT_OUT = pathlib.Path(__file__).resolve().parent.parent / (
    "BENCH_storage.json"
)
_USER = User("bench", frozenset({"sales"}))
_QUERIES = ["network migration", "help desk outsourcing", "security",
            "storage OR network OR services", '"status report"']


def _rss_mb() -> float:
    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return usage / 1024.0  # linux reports KiB


def _stream_build(deals: int, docs: int, seed: int,
                  directory: str) -> Dict[str, object]:
    """Stream-generate + index ``deals`` workbooks into ``directory``."""
    index = SegmentBackedIndex()
    index.directory = directory  # spill flushed segments immediately
    engine = SearchEngine(index=index, cache_size=0)
    rss_before = _rss_mb()
    generator = CorpusGenerator(
        CorpusConfig(seed=seed, n_deals=deals, docs_per_deal=docs)
    )
    started = time.perf_counter()
    indexed = 0
    for workbook in generator.iter_workbooks():
        report = DataAcquisition(engine).acquire(
            WorkbookCollection([workbook])
        )
        indexed += report.indexed
    build_seconds = time.perf_counter() - started
    started = time.perf_counter()
    stats = engine.save_index(directory)
    save_seconds = time.perf_counter() - started
    rankings = _engine_rankings(engine)
    return {
        "engine_rankings": rankings,
        "stats": stats,
        "result": {
            "deals": deals,
            "docs_per_deal": docs,
            "documents": indexed,
            "build_seconds": build_seconds,
            "docs_per_second": (
                indexed / build_seconds if build_seconds else 0.0
            ),
            "save_seconds": save_seconds,
            "segments": stats["segments"],
            "rss_before_mb": rss_before,
            "rss_after_mb": _rss_mb(),
        },
    }


def _engine_rankings(engine: SearchEngine) -> List[List[object]]:
    return [
        [[hit.doc_id, hit.score] for hit in engine.search(query, limit=10)]
        for query in _QUERIES
    ]


def _json_baseline_bytes(index: SegmentBackedIndex) -> int:
    """What naive JSON persistence of the same index would cost."""
    documents = {}
    for doc_id in index.doc_ids:
        document = index.document(doc_id)
        documents[doc_id] = {
            "fields": dict(document.fields),
            "metadata": dict(document.metadata),
        }
    postings = {
        field: {
            term: index.postings(term, field)
            for term in sorted(index.vocabulary(field))
        }
        for field in index.fields
    }
    return len(
        json.dumps({"documents": documents, "postings": postings})
        .encode("utf-8")
    )


def _system_rankings(eil: EILSystem, corpus) -> List[object]:
    keyword = [
        [[hit.doc_id, hit.score] for hit in eil.keyword_search(q, 10)]
        for q in _QUERIES
    ]
    forms = [
        scope_query("End User Services"),
        service_keyword_query("Storage Management Services",
                              "data replication"),
    ]
    activities = [
        [[a.deal_id, a.score] for a in eil.search(form, _USER).activities]
        for form in forms
    ]
    return [keyword, activities]


def run_bench(
    deals: int = 24,
    docs: int = 40,
    stream_deals: int = 1000,
    stream_docs: int = 100,
    seed: int = 2008,
    out_path: pathlib.Path = DEFAULT_OUT,
) -> Dict[str, object]:
    """Run all three measurements and write the JSON report."""
    workdir = pathlib.Path(tempfile.mkdtemp(prefix="bench_storage_"))
    try:
        # 1. Streaming engine-level build at scale (bounded memory).
        stream_dir = workdir / "stream"
        stream_dir.mkdir()
        streamed = _stream_build(stream_deals, stream_docs, seed,
                                 str(stream_dir))

        # Engine-level cold start over the streamed index.
        started = time.perf_counter()
        cold_engine = SearchEngine(cache_size=0)
        cold_engine.load_index(str(stream_dir))
        engine_load_seconds = time.perf_counter() - started
        engine_identical = (
            _engine_rankings(cold_engine) == streamed["engine_rankings"]
        )

        # 2. System-level rebuild vs cold start + bytes accounting.
        corpus = CorpusGenerator(
            CorpusConfig(seed=seed, n_deals=deals, docs_per_deal=docs)
        ).generate()
        started = time.perf_counter()
        built = EILSystem.build(corpus)
        rebuild_seconds = time.perf_counter() - started

        system_dir = workdir / "system"
        started = time.perf_counter()
        stats = built.save_index(str(system_dir))
        persist_seconds = time.perf_counter() - started

        started = time.perf_counter()
        loaded = EILSystem.load(str(system_dir), corpus)
        cold_start_seconds = time.perf_counter() - started
        system_identical = (
            _system_rankings(loaded, corpus)
            == _system_rankings(built, corpus)
        )

        json_bytes = _json_baseline_bytes(loaded.engine.index
                                          if built.shards == 1
                                          else built.engine.index)
        documents = stats["docs"]
        json_bytes_per_doc = json_bytes / documents if documents else 0.0
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    report: Dict[str, object] = {
        "bench": "storage",
        "schema_version": 1,
        "created_unix": time.time(),
        "corpus": {
            "seed": seed,
            "deals": deals,
            "docs_per_deal": docs,
            "stream_deals": stream_deals,
            "stream_docs_per_deal": stream_docs,
        },
        "streaming_build": streamed["result"],
        "engine_cold_start": {
            "load_seconds": engine_load_seconds,
            "build_seconds": streamed["result"]["build_seconds"],
            "speedup": (
                streamed["result"]["build_seconds"] / engine_load_seconds
                if engine_load_seconds else 0.0
            ),
            "rankings_identical": engine_identical,
        },
        "storage": {
            "documents": documents,
            "segments": stats["segments"],
            "size_bytes": stats["size_bytes"],
            "postings_bytes": stats["postings_bytes"],
            "docstore_bytes": stats["docstore_bytes"],
            "bytes_per_doc": stats["bytes_per_doc"],
            "json_baseline_bytes": json_bytes,
            "json_baseline_bytes_per_doc": json_bytes_per_doc,
            "ratio_vs_json": (
                stats["bytes_per_doc"] / json_bytes_per_doc
                if json_bytes_per_doc else 0.0
            ),
        },
        "cold_start": {
            "rebuild_seconds": rebuild_seconds,
            "persist_seconds": persist_seconds,
            "load_seconds": cold_start_seconds,
            "speedup": (
                rebuild_seconds / cold_start_seconds
                if cold_start_seconds else 0.0
            ),
            "rankings_identical": system_identical,
        },
    }
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    return report


def check_report(report: Dict[str, object]) -> None:
    """Schema + acceptance assertions shared by pytest and CI."""
    assert report["bench"] == "storage"
    assert report["schema_version"] == 1
    streaming = report["streaming_build"]
    assert streaming["documents"] > 0
    assert streaming["docs_per_second"] > 0
    assert streaming["segments"] >= 1
    storage = report["storage"]
    assert 0 < storage["bytes_per_doc"] < (
        storage["json_baseline_bytes_per_doc"]
    ), "segment format must beat the JSON baseline"
    assert report["engine_cold_start"]["rankings_identical"] is True
    cold = report["cold_start"]
    assert cold["rankings_identical"] is True
    assert cold["load_seconds"] > 0
    assert cold["speedup"] > 1.0, (
        "cold start must be faster than a rebuild"
    )


def test_bench_storage(report_writer):
    """Pytest entry: run a small bench and sanity-check the JSON."""
    report = run_bench(deals=5, docs=16, stream_deals=12, stream_docs=16)
    check_report(report)
    assert DEFAULT_OUT.exists()
    parsed = json.loads(DEFAULT_OUT.read_text())
    assert parsed["bench"] == "storage"
    streaming = report["streaming_build"]
    storage = report["storage"]
    cold = report["cold_start"]
    lines = [
        "E18: persistent segmented index storage",
        f"streaming build {streaming['documents']} docs in "
        f"{streaming['build_seconds']:.2f}s "
        f"({streaming['docs_per_second']:.0f} docs/s, "
        f"{streaming['segments']} segments, RSS "
        f"{streaming['rss_before_mb']:.0f} -> "
        f"{streaming['rss_after_mb']:.0f} MB)",
        f"{storage['bytes_per_doc']:.0f} bytes/doc vs JSON baseline "
        f"{storage['json_baseline_bytes_per_doc']:.0f} "
        f"({storage['ratio_vs_json']:.2f}x)",
        f"cold start {cold['load_seconds']:.2f}s vs rebuild "
        f"{cold['rebuild_seconds']:.2f}s "
        f"(speedup {cold['speedup']:.1f}x, identical rankings: "
        f"{cold['rankings_identical']})",
    ]
    report_writer("E18_storage", "\n".join(lines))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--deals", type=int, default=24)
    parser.add_argument("--docs", type=int, default=40)
    parser.add_argument("--stream-deals", type=int, default=1000)
    parser.add_argument("--stream-docs", type=int, default=100)
    parser.add_argument("--seed", type=int, default=2008)
    parser.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUT)
    parser.add_argument("--smoke", action="store_true",
                        help="small scales for CI")
    args = parser.parse_args()
    if args.smoke:
        args.deals, args.docs = 5, 16
        args.stream_deals, args.stream_docs = 12, 16
    report = run_bench(args.deals, args.docs, args.stream_deals,
                       args.stream_docs, args.seed, args.out)
    check_report(report)
    streaming = report["streaming_build"]
    storage = report["storage"]
    cold = report["cold_start"]
    engine_cold = report["engine_cold_start"]
    print(f"wrote {args.out}")
    print(f"streaming build : {streaming['documents']} docs in "
          f"{streaming['build_seconds']:.2f}s "
          f"({streaming['docs_per_second']:.0f} docs/s, "
          f"{streaming['segments']} segments)")
    print(f"memory          : RSS {streaming['rss_before_mb']:.0f} MB -> "
          f"{streaming['rss_after_mb']:.0f} MB")
    print(f"engine cold load: {engine_cold['load_seconds']:.2f}s "
          f"(vs {engine_cold['build_seconds']:.2f}s build, "
          f"{engine_cold['speedup']:.1f}x, identical: "
          f"{engine_cold['rankings_identical']})")
    print(f"bytes/doc       : {storage['bytes_per_doc']:.0f} vs JSON "
          f"{storage['json_baseline_bytes_per_doc']:.0f} "
          f"({storage['ratio_vs_json']:.2f}x)")
    print(f"system cold     : {cold['load_seconds']:.2f}s vs rebuild "
          f"{cold['rebuild_seconds']:.2f}s "
          f"(speedup {cold['speedup']:.1f}x, identical: "
          f"{cold['rankings_identical']})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
