"""Serving-layer bench: ``BENCH_serving.json``.

Measures what the concurrent serving PR promises (docs/OPERATIONS.md):

* **steady state** — N concurrent closed-loop clients drive the
  meta-query mix through :class:`~repro.serving.EILServer`; the bench
  records sustained QPS and p50/p95/p99 latency for the unsharded
  engine and for a deal-sharded fan-out engine (``shards=4``), plus a
  parity check that the sharded ranking is identical to the unsharded
  one.
* **concurrent mutation** — the same load while a churn thread
  repeatedly onboards/offboards an extra engagement
  (``add_workbook`` / ``remove_deal``).  Snapshot isolation means
  every request must still complete: zero errors, no torn reads.
* **overload** — a deliberately under-provisioned server (2 workers +
  2 queue slots) against a slowed substrate, hammered by 8 clients
  with a tight deadline: the bench records shed and deadline-rejected
  counts, demonstrating bounded queues and deadline-aware rejection
  instead of collapse.

Run standalone (CI smoke uses ``--smoke``)::

    PYTHONPATH=src python benchmarks/bench_serving.py [--smoke]

or under pytest, where it asserts the load-shedding and
snapshot-isolation trajectories::

    PYTHONPATH=src python -m pytest benchmarks/bench_serving.py
"""

from __future__ import annotations

import argparse
import json
import pathlib
import threading
import time
from typing import Any, Dict, List, Optional

from repro import CorpusConfig, CorpusGenerator, EILSystem, obs
from repro.core.metaqueries import (
    role_capacity_query,
    scope_query,
    service_keyword_query,
    worked_with_query,
)
from repro.corpus import DealGenerator, WorkbookFactory
from repro.errors import EILUnavailableError, TransientError
from repro.security.access import User
from repro.serving import EILServer

DEFAULT_OUT = pathlib.Path(__file__).resolve().parent.parent / (
    "BENCH_serving.json"
)
_USER = User("bench", frozenset({"sales"}))


def _query_forms(corpus):
    member = corpus.deals[0].team[0]
    return [
        scope_query("End User Services"),
        worked_with_query(member.person.full_name),
        role_capacity_query("cross tower TSA"),
        service_keyword_query("Storage Management Services",
                              "data replication"),
    ]


def _extra_workbook(corpus, docs: int):
    """One more engagement, generated against the same taxonomy."""
    generator = DealGenerator(seed=999, taxonomy=corpus.taxonomy)
    deal = generator.generate(len(corpus.deals) + 1)[-1]
    workbook = WorkbookFactory(corpus.taxonomy, seed=999).build_workbook(
        deal, docs
    )
    return deal, workbook


class _SlowSystem:
    """A system facade with a fixed per-request service time.

    The overload phase needs requests that *occupy workers* long
    enough for arrivals to outpace completions; a sleep in front of
    the real system makes that deterministic without scaling the
    corpus up.
    """

    def __init__(self, eil: EILSystem, delay: float) -> None:
        self._eil = eil
        self._delay = delay

    def search(self, *args, **kwargs):
        time.sleep(self._delay)
        return self._eil.search(*args, **kwargs)

    def keyword_search(self, *args, **kwargs):
        time.sleep(self._delay)
        return self._eil.keyword_search(*args, **kwargs)


def _closed_loop(
    system: Any,
    forms,
    clients: int,
    requests_per_client: int,
    concurrency: int = 4,
    queue_depth: int = 16,
    deadline: Optional[float] = None,
    mutator=None,
) -> Dict[str, Any]:
    """Drive the query mix through an :class:`EILServer`; return stats.

    Each client thread issues ``requests_per_client`` blocking
    requests back-to-back (a closed loop: think one user waiting for
    each result page).  ``mutator``, when given, is a zero-arg
    callable run in its own thread until the load finishes.
    """
    registry = obs.MetricsRegistry()
    outcomes = {"completed": 0, "shed": 0, "deadline": 0,
                "unavailable": 0}
    outcomes_lock = threading.Lock()
    stop_mutating = threading.Event()

    def _count(key: str) -> None:
        with outcomes_lock:
            outcomes[key] += 1

    with obs.use_registry(registry):
        with EILServer(system, max_concurrency=concurrency,
                       queue_depth=queue_depth) as server:

            def client(offset: int) -> None:
                from repro.errors import (
                    DeadlineExceededError,
                    ServerOverloadedError,
                )
                for i in range(requests_per_client):
                    form = forms[(offset + i) % len(forms)]
                    try:
                        server.search(form, _USER,
                                      deadline_seconds=deadline)
                    except ServerOverloadedError:
                        _count("shed")
                    except DeadlineExceededError:
                        _count("deadline")
                    except EILUnavailableError:
                        _count("unavailable")
                    except TransientError:
                        _count("unavailable")
                    else:
                        _count("completed")

            def churn() -> None:
                while not stop_mutating.is_set():
                    mutator()

            mutation_thread = None
            if mutator is not None:
                mutation_thread = threading.Thread(
                    target=churn, name="churn"
                )
                mutation_thread.start()
            threads = [
                threading.Thread(target=client, args=(n,),
                                 name=f"client-{n}")
                for n in range(clients)
            ]
            started = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            elapsed = time.perf_counter() - started
            stop_mutating.set()
            if mutation_thread is not None:
                mutation_thread.join()

    latency = registry.histograms.get("serving.latency")
    counters = {
        name: counter.value
        for name, counter in registry.counters.items()
        if name.startswith("serving.")
    }
    issued = clients * requests_per_client
    return {
        "clients": clients,
        "requests_per_client": requests_per_client,
        "issued": issued,
        "outcomes": outcomes,
        "seconds": elapsed,
        "sustained_qps": (
            outcomes["completed"] / elapsed if elapsed else 0.0
        ),
        "latency_ms": {
            "p50": latency.percentile(50) * 1000 if latency else 0.0,
            "p95": latency.percentile(95) * 1000 if latency else 0.0,
            "p99": latency.percentile(99) * 1000 if latency else 0.0,
        },
        "serving_counters": counters,
    }


def _ranking_parity(corpus, unsharded: EILSystem,
                    sharded: EILSystem) -> bool:
    """Sharded fan-out must rank exactly like the single index."""
    for form in _query_forms(corpus):
        left = unsharded.search(form, _USER)
        right = sharded.search(form, _USER)
        if [a.deal_id for a in left.activities] != [
            a.deal_id for a in right.activities
        ]:
            return False
    left_hits = unsharded.keyword_search("end user services", limit=10)
    right_hits = sharded.keyword_search("end user services", limit=10)
    return [(h.doc_id, h.score) for h in left_hits] == [
        (h.doc_id, h.score) for h in right_hits
    ]


def run_bench(
    deals: int = 8,
    docs: int = 16,
    clients: int = 4,
    requests: int = 24,
    shards: int = 4,
    seed: int = 2008,
    out_path: pathlib.Path = DEFAULT_OUT,
) -> Dict[str, object]:
    """Run the three serving scenarios, write the JSON."""
    corpus = CorpusGenerator(
        CorpusConfig(seed=seed, n_deals=deals, docs_per_deal=docs)
    ).generate()
    forms = _query_forms(corpus)
    unsharded = EILSystem.build(corpus, shards=1)
    sharded = EILSystem.build(corpus, shards=shards)

    steady = {
        "shards=1": _closed_loop(unsharded, forms, clients, requests),
        f"shards={shards}": _closed_loop(
            sharded, forms, clients, requests
        ),
    }

    new_deal, workbook = _extra_workbook(corpus, docs)

    def mutate() -> None:
        sharded.add_workbook(workbook)
        sharded.remove_deal(new_deal.deal_id)

    mutation = _closed_loop(
        sharded, forms, clients, requests, mutator=mutate
    )
    # Leave the system in its original state for the parity check.
    sharded.remove_deal(new_deal.deal_id)

    overload = _closed_loop(
        _SlowSystem(unsharded, delay=0.02),
        forms,
        clients=8,
        requests_per_client=max(4, requests // 4),
        concurrency=2,
        queue_depth=2,
        deadline=0.01,
    )

    report: Dict[str, object] = {
        "bench": "serving",
        "schema_version": 1,
        "created_unix": time.time(),
        "corpus": {"seed": seed, "deals": deals, "docs_per_deal": docs},
        "shards": shards,
        "sharded_ranking_identical": _ranking_parity(
            corpus, unsharded, sharded
        ),
        "steady": steady,
        "mutation": mutation,
        "overload": overload,
    }
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    return report


def test_bench_serving(report_writer):
    """Pytest entry: run a small bench and assert the trajectories."""
    report = run_bench(deals=4, docs=14, clients=4, requests=8)
    assert report["sharded_ranking_identical"] is True
    for label, run in report["steady"].items():
        # Steady state is under capacity: every request completes.
        assert run["outcomes"]["completed"] == run["issued"], label
        assert run["sustained_qps"] > 0, label
        assert run["latency_ms"]["p99"] >= run["latency_ms"]["p50"]
    mutation = report["mutation"]
    # Snapshot isolation: queries racing add_workbook/remove_deal
    # never observe a torn index — zero errors of any kind.
    assert mutation["outcomes"]["completed"] == mutation["issued"]
    assert mutation["outcomes"]["unavailable"] == 0
    overload = report["overload"]
    # 8 clients vs 2+2 slots and a 20 ms service time: admission
    # control must shed rather than queue without bound, and requests
    # that outlived their 10 ms deadline must be rejected unstarted.
    assert overload["outcomes"]["shed"] > 0
    assert overload["serving_counters"]["serving.shed"] > 0
    assert (
        overload["outcomes"]["completed"]
        + overload["outcomes"]["shed"]
        + overload["outcomes"]["deadline"]
    ) == overload["issued"]
    assert DEFAULT_OUT.exists()
    parsed = json.loads(DEFAULT_OUT.read_text())
    assert parsed["bench"] == "serving"
    steady = report["steady"]
    lines = [
        "E17: concurrent serving (sharded fan-out, admission control)",
        f"steady {4} clients: shards=1 "
        f"{steady['shards=1']['sustained_qps']:.0f} q/s p99 "
        f"{steady['shards=1']['latency_ms']['p99']:.1f} ms; shards=4 "
        f"{steady['shards=4']['sustained_qps']:.0f} q/s p99 "
        f"{steady['shards=4']['latency_ms']['p99']:.1f} ms "
        f"(rankings identical: "
        f"{report['sharded_ranking_identical']})",
        f"under churn: {mutation['outcomes']['completed']}/"
        f"{mutation['issued']} completed, 0 torn reads",
        f"overload (8 clients, 2+2 slots): "
        f"{overload['outcomes']['completed']} completed, "
        f"{overload['outcomes']['shed']} shed, "
        f"{overload['outcomes']['deadline']} past deadline "
        "(bounded queue, no collapse)",
    ]
    report_writer("E17_serving", "\n".join(lines))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--deals", type=int, default=8)
    parser.add_argument("--docs", type=int, default=16)
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--requests", type=int, default=24)
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--seed", type=int, default=2008)
    parser.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUT)
    parser.add_argument("--smoke", action="store_true",
                        help="small corpus + short load (CI smoke)")
    args = parser.parse_args()
    if args.smoke:
        args.deals, args.docs, args.requests = 4, 14, 8
    report = run_bench(args.deals, args.docs, args.clients,
                       args.requests, args.shards, args.seed, args.out)
    print(f"wrote {args.out}")
    print(f"sharded ranking identical: "
          f"{report['sharded_ranking_identical']}")
    for label, run in report["steady"].items():
        print(f"steady {label:<9}: {run['sustained_qps']:.0f} q/s  "
              f"p50={run['latency_ms']['p50']:.1f}ms  "
              f"p99={run['latency_ms']['p99']:.1f}ms")
    mutation = report["mutation"]
    print(f"under churn    : {mutation['sustained_qps']:.0f} q/s  "
          f"{mutation['outcomes']['completed']}/{mutation['issued']} "
          f"completed")
    overload = report["overload"]
    print(f"overload       : {overload['outcomes']['completed']} "
          f"completed, {overload['outcomes']['shed']} shed, "
          f"{overload['outcomes']['deadline']} past deadline")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
