"""Query-latency baseline + execution ablation: ``BENCH_query_latency.json``.

Times the online query path (business-activity driven search plus the
keyword baseline) over a seeded corpus and emits a machine-readable
perf baseline with p50/p95/p99 per query class — the before/after
record every optimization PR compares against.  Also measures the
observability layer's own cost: the same workload runs once with the
default (enabled) registry and once with recording disabled, and the
report includes the overhead ratio (acceptance: < 5% on the bench
corpus).

The second section is the **execution ablation** (EXPERIMENTS.md E16):
a scaled synthetic corpus (default 100 deals x 80 docs) is indexed
straight into a :class:`~repro.search.SearchEngine` and a query mix
(single term, AND, limited OR, limited hybrid, activity-scoped OR) runs
under each executor configuration — ``exhaustive`` (the pre-optimization
interpreter), ``bulk`` (bulk posting scoring only), ``planner`` (+
df-ordered AND and filter pushdown), and ``full`` (+ heap top-k and
MaxScore pruning).  Per-class p50 speedups versus ``exhaustive`` and the
``engine.postings_touched`` counter per configuration land in the JSON;
rankings are asserted identical across configurations while measuring.

Run standalone (CI smoke uses ``--quick``)::

    PYTHONPATH=src python benchmarks/bench_query_latency.py [--quick]

or under pytest, where it asserts the JSON is well-formed::

    PYTHONPATH=src python -m pytest benchmarks/bench_query_latency.py
"""

from __future__ import annotations

import argparse
import json
import pathlib
import random
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro import CorpusConfig, CorpusGenerator, EILSystem, obs
from repro.core.metaqueries import (
    role_capacity_query,
    scope_query,
    service_keyword_query,
    worked_with_query,
)
from repro.search import ExecutionOptions, IndexableDocument, SearchEngine
from repro.security.access import User

DEFAULT_OUT = pathlib.Path(__file__).resolve().parent.parent / (
    "BENCH_query_latency.json"
)
_USER = User("bench", frozenset({"sales"}))

#: Executor configurations measured by the ablation, cumulative from
#: the reference interpreter to the fully optimized path.
ABLATIONS: List[Tuple[str, ExecutionOptions]] = [
    ("exhaustive", ExecutionOptions.exhaustive()),
    ("bulk", ExecutionOptions(
        bulk_scoring=True, df_ordering=False, filter_pushdown=False,
        maxscore=False, top_k_heap=False,
    )),
    ("planner", ExecutionOptions(
        bulk_scoring=True, df_ordering=True, filter_pushdown=True,
        maxscore=False, top_k_heap=False,
    )),
    ("full", ExecutionOptions()),
]

# Tiered vocabulary for the scaled corpus: each (word, probability)
# pair controls the fraction of documents containing the word, giving
# MaxScore common clauses to prune and rare clauses to keep.
_TIERS: List[Tuple[str, float]] = [
    ("omega", 0.60), ("sigma", 0.40), ("gamma", 0.25),
    ("delta", 0.08), ("kappa", 0.02), ("zeta", 0.005),
]
_FILLER = [
    "network", "storage", "deal", "client", "review", "contract",
    "server", "pricing", "migration", "delivery", "proposal", "audit",
    "schedule", "finance", "team", "scope", "risk", "tower",
]


def _percentile(samples: List[float], q: float) -> float:
    """Nearest-rank percentile of ``samples`` (must be non-empty)."""
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1,
                      round(q / 100.0 * (len(ordered) - 1))))
    return ordered[rank]


def _summarize(samples: List[float]) -> Dict[str, float]:
    return {
        "count": len(samples),
        "mean_ms": sum(samples) / len(samples) * 1000.0,
        "p50_ms": _percentile(samples, 50) * 1000.0,
        "p95_ms": _percentile(samples, 95) * 1000.0,
        "p99_ms": _percentile(samples, 99) * 1000.0,
        "max_ms": max(samples) * 1000.0,
    }


def _workload(eil: EILSystem, corpus) -> List[Tuple[str, Callable[[], object]]]:
    """(query class, thunk) pairs covering the paper's meta-queries."""
    member = corpus.deals[0].team[0]
    concept = scope_query("End User Services")
    people = worked_with_query(member.person.full_name)
    role = role_capacity_query("cross tower TSA")
    hybrid = service_keyword_query("Storage Management Services",
                                   "data replication")
    return [
        ("concept", lambda: eil.search(concept, _USER)),
        ("people", lambda: eil.search(people, _USER)),
        ("role", lambda: eil.search(role, _USER)),
        ("hybrid", lambda: eil.search(hybrid, _USER)),
        ("keyword_baseline",
         lambda: eil.keyword_search("end user services")),
        ("keyword_topk",
         lambda: eil.keyword_search(
             "migration OR replication OR services OR storage "
             "OR network", limit=5)),
    ]


def _time_workload(
    workload: List[Tuple[str, Callable[[], object]]], rounds: int
) -> Dict[str, List[float]]:
    samples: Dict[str, List[float]] = {name: [] for name, _ in workload}
    for _ in range(rounds):
        for name, thunk in workload:
            started = time.perf_counter()
            thunk()
            samples[name].append(time.perf_counter() - started)
    return samples


# -- execution ablation (scaled corpus) ------------------------------------


def _scaled_engine(
    deals: int, docs: int, seed: int
) -> Tuple[SearchEngine, frozenset]:
    """A scaled synthetic corpus indexed directly into an engine.

    Bypasses the full EIL offline build (this section measures the
    query executor, not CPE parsing) and returns the engine plus a
    doc-id scope covering 10% of the deals for the scoped query class.
    """
    rng = random.Random(seed)
    engine = SearchEngine(cache_size=0)
    scoped_deals = {f"deal{d:03d}" for d in range(max(1, deals // 10))}
    scope_ids = set()
    for d in range(deals):
        deal_id = f"deal{d:03d}"
        for n in range(docs):
            doc_id = f"{deal_id}-doc{n:03d}"
            words = rng.choices(_FILLER, k=rng.randint(25, 55))
            for word, probability in _TIERS:
                if rng.random() < probability:
                    words.insert(rng.randrange(len(words)), word)
            if rng.random() < 0.03:
                words.extend(["prime", "mover"])
            engine.add(IndexableDocument(
                doc_id,
                {"title": " ".join(rng.choices(_FILLER, k=4)),
                 "body": " ".join(words)},
                {"deal_id": deal_id},
            ))
            if deal_id in scoped_deals:
                scope_ids.add(doc_id)
    return engine, frozenset(scope_ids)


def _scaled_queries(
    scope_ids: frozenset,
) -> List[Tuple[str, str, Optional[int], Optional[frozenset]]]:
    """(class, query, limit, doc_filter) for the ablation mix."""
    or_query = "zeta OR kappa OR omega OR sigma OR gamma"
    return [
        ("term", "gamma", None, None),
        ("and_query", "gamma delta sigma", None, None),
        ("or_limited", or_query, 10, None),
        ("hybrid_limited",
         '"prime mover" OR delta OR omega OR sigma', 10, None),
        ("scoped_or", or_query, 10, scope_ids),
    ]


def run_ablation(
    deals: int = 100,
    docs: int = 80,
    rounds: int = 15,
    seed: int = 2008,
) -> Dict[str, object]:
    """Measure every executor configuration on the scaled corpus."""
    build_started = time.perf_counter()
    engine, scope_ids = _scaled_engine(deals, docs, seed)
    build_seconds = time.perf_counter() - build_started
    queries = _scaled_queries(scope_ids)

    def run(name, query, limit, doc_filter, options):
        return engine.search(query, limit=limit, doc_filter=doc_filter,
                             options=options)

    # Warm up once per (query, config): compiles postings and idf
    # caches outside the timed region, and proves the ranking-
    # equivalence guarantee on the bench corpus while at it.
    for class_name, query, limit, doc_filter in queries:
        reference = None
        for config_name, options in ABLATIONS:
            hits = run(class_name, query, limit, doc_filter, options)
            ranking = [(h.doc_id, h.score) for h in hits]
            if reference is None:
                reference = ranking
            elif ranking != reference:
                raise AssertionError(
                    f"ranking diverged: {class_name!r} under "
                    f"{config_name!r}"
                )

    per_config: Dict[str, Dict[str, Dict[str, float]]] = {}
    postings_touched: Dict[str, int] = {}
    for config_name, options in ABLATIONS:
        samples: Dict[str, List[float]] = {}
        for class_name, query, limit, doc_filter in queries:
            per_class = samples.setdefault(class_name, [])
            for _ in range(rounds):
                started = time.perf_counter()
                run(class_name, query, limit, doc_filter, options)
                per_class.append(time.perf_counter() - started)
        per_config[config_name] = {
            name: _summarize(s) for name, s in samples.items()
        }
        with obs.use_registry() as registry:
            for class_name, query, limit, doc_filter in queries:
                run(class_name, query, limit, doc_filter, options)
            postings_touched[config_name] = registry.counter(
                "engine.postings_touched"
            ).value

    speedups = {
        class_name: {
            config_name: (
                per_config["exhaustive"][class_name]["p50_ms"]
                / per_config[config_name][class_name]["p50_ms"]
                if per_config[config_name][class_name]["p50_ms"]
                else 1.0
            )
            for config_name, _ in ABLATIONS
        }
        for class_name, _, _, _ in queries
    }
    return {
        "corpus": {"seed": seed, "deals": deals, "docs_per_deal": docs,
                   "documents_indexed": len(engine)},
        "rounds": rounds,
        "build_seconds": build_seconds,
        "configurations": [name for name, _ in ABLATIONS],
        "per_config": per_config,
        "p50_speedup_vs_exhaustive": speedups,
        "postings_touched_per_workload": postings_touched,
    }


def run_bench(
    deals: int = 12,
    docs: int = 40,
    rounds: int = 30,
    seed: int = 2008,
    out_path: pathlib.Path = DEFAULT_OUT,
    scaled_deals: int = 100,
    scaled_docs: int = 80,
    scaled_rounds: int = 15,
) -> Dict[str, object]:
    """Build, measure, and write the JSON baseline; returns the report."""
    registry = obs.MetricsRegistry()
    with obs.use_registry(registry):
        build_started = time.perf_counter()
        corpus = CorpusGenerator(
            CorpusConfig(seed=seed, n_deals=deals, docs_per_deal=docs)
        ).generate()
        eil = EILSystem.build(corpus)
        build_seconds = time.perf_counter() - build_started

        workload = _workload(eil, corpus)
        for name, thunk in workload:  # warm-up, outside the sample set
            thunk()
        samples = _time_workload(workload, rounds)

        # Instrumentation overhead: same workload, recording disabled.
        obs.set_enabled(False)
        try:
            disabled_samples = _time_workload(workload, rounds)
        finally:
            obs.set_enabled(True)

    all_enabled = [s for per_class in samples.values() for s in per_class]
    all_disabled = [
        s for per_class in disabled_samples.values() for s in per_class
    ]
    enabled_mean = sum(all_enabled) / len(all_enabled)
    disabled_mean = sum(all_disabled) / len(all_disabled)
    report: Dict[str, object] = {
        "bench": "query_latency",
        "schema_version": 2,
        "created_unix": time.time(),
        "corpus": {"seed": seed, "deals": deals, "docs_per_deal": docs,
                   "documents_indexed":
                       eil.build_report.documents_indexed},
        "rounds": rounds,
        "build_seconds": build_seconds,
        "latency": _summarize(all_enabled),
        "per_class": {
            name: _summarize(per_class)
            for name, per_class in samples.items()
        },
        "observability_overhead": {
            "enabled_mean_ms": enabled_mean * 1000.0,
            "disabled_mean_ms": disabled_mean * 1000.0,
            "overhead_ratio": (
                enabled_mean / disabled_mean if disabled_mean else 1.0
            ),
        },
        "counters": {
            name: counter.value
            for name, counter in sorted(registry.counters.items())
            if name.startswith(("engine.", "db.", "query."))
        },
        "execution_ablation": run_ablation(
            scaled_deals, scaled_docs, scaled_rounds, seed
        ),
    }
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    return report


def test_bench_query_latency(report_writer):
    """Pytest entry: run a small bench and sanity-check the JSON."""
    report = run_bench(deals=6, docs=20, rounds=5,
                       scaled_deals=15, scaled_docs=10, scaled_rounds=3)
    latency = report["latency"]
    assert latency["count"] > 0
    assert 0 < latency["p50_ms"] <= latency["p95_ms"] <= latency["max_ms"]
    assert DEFAULT_OUT.exists()
    parsed = json.loads(DEFAULT_OUT.read_text())
    assert parsed["bench"] == "query_latency"
    ablation = report["execution_ablation"]
    assert set(ablation["per_config"]) == {
        name for name, _ in ABLATIONS
    }
    touched = ablation["postings_touched_per_workload"]
    # MaxScore + pushdown must do strictly less posting work than the
    # reference interpreter, even on the reduced smoke corpus.
    assert touched["full"] < touched["exhaustive"]
    or_speedup = ablation["p50_speedup_vs_exhaustive"]["or_limited"]
    lines = [
        "E13: query latency baseline",
        f"p50 {latency['p50_ms']:.2f}ms  p95 {latency['p95_ms']:.2f}ms  "
        f"p99 {latency['p99_ms']:.2f}ms",
        f"overhead ratio (obs on/off): "
        f"{report['observability_overhead']['overhead_ratio']:.3f}",
        "E16: execution ablation (smoke corpus)",
        f"or_limited p50 speedup full vs exhaustive: "
        f"{or_speedup['full']:.2f}x",
        f"postings touched exhaustive={touched['exhaustive']} "
        f"full={touched['full']}",
    ]
    report_writer("E13_query_latency", "\n".join(lines))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--deals", type=int, default=12)
    parser.add_argument("--docs", type=int, default=40)
    parser.add_argument("--rounds", type=int, default=30)
    parser.add_argument("--seed", type=int, default=2008)
    parser.add_argument("--scaled-deals", type=int, default=100)
    parser.add_argument("--scaled-docs", type=int, default=80)
    parser.add_argument("--scaled-rounds", type=int, default=15)
    parser.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUT)
    parser.add_argument("--quick", action="store_true",
                        help="small corpus + few rounds (CI smoke)")
    args = parser.parse_args()
    if args.quick:
        args.deals, args.docs, args.rounds = 5, 15, 5
        args.scaled_deals, args.scaled_docs, args.scaled_rounds = 20, 10, 3
    report = run_bench(args.deals, args.docs, args.rounds, args.seed,
                       args.out, args.scaled_deals, args.scaled_docs,
                       args.scaled_rounds)
    latency = report["latency"]
    overhead = report["observability_overhead"]
    ablation = report["execution_ablation"]
    touched = ablation["postings_touched_per_workload"]
    print(f"wrote {args.out}")
    print(f"queries timed : {latency['count']}")
    print(f"latency p50   : {latency['p50_ms']:.2f}ms")
    print(f"latency p95   : {latency['p95_ms']:.2f}ms")
    print(f"latency p99   : {latency['p99_ms']:.2f}ms")
    print(f"obs overhead  : {overhead['overhead_ratio']:.3f}x "
          f"(enabled {overhead['enabled_mean_ms']:.3f}ms / "
          f"disabled {overhead['disabled_mean_ms']:.3f}ms)")
    print(f"ablation corpus: {ablation['corpus']['documents_indexed']} "
          f"documents")
    header = "class".ljust(16) + "".join(
        name.rjust(12) for name, _ in ABLATIONS
    )
    print(header + "   (p50 ms / speedup)")
    for class_name, by_config in ablation["per_config"]["full"].items():
        row = class_name.ljust(16)
        for config_name, _ in ABLATIONS:
            p50 = ablation["per_config"][config_name][class_name][
                "p50_ms"
            ]
            speedup = ablation["p50_speedup_vs_exhaustive"][class_name][
                config_name
            ]
            row += f"{p50:7.2f}/{speedup:4.1f}x"
        print(row)
    print(f"postings touched per workload: "
          + ", ".join(f"{k}={v}" for k, v in touched.items()))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
