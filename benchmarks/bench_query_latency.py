"""Query-latency baseline: ``BENCH_query_latency.json``.

Times the online query path (business-activity driven search plus the
keyword baseline) over a seeded corpus and emits a machine-readable
perf baseline with p50/p95/p99 per query class — the before/after
record every optimization PR compares against.  Also measures the
observability layer's own cost: the same workload runs once with the
default (enabled) registry and once with recording disabled, and the
report includes the overhead ratio (acceptance: < 5% on the bench
corpus).

Run standalone (CI smoke uses ``--quick``)::

    PYTHONPATH=src python benchmarks/bench_query_latency.py [--quick]

or under pytest, where it asserts the JSON is well-formed::

    PYTHONPATH=src python -m pytest benchmarks/bench_query_latency.py
"""

from __future__ import annotations

import argparse
import json
import pathlib
import time
from typing import Callable, Dict, List, Tuple

from repro import CorpusConfig, CorpusGenerator, EILSystem, obs
from repro.core.metaqueries import (
    role_capacity_query,
    scope_query,
    service_keyword_query,
    worked_with_query,
)
from repro.security.access import User

DEFAULT_OUT = pathlib.Path(__file__).resolve().parent.parent / (
    "BENCH_query_latency.json"
)
_USER = User("bench", frozenset({"sales"}))


def _percentile(samples: List[float], q: float) -> float:
    """Nearest-rank percentile of ``samples`` (must be non-empty)."""
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1,
                      round(q / 100.0 * (len(ordered) - 1))))
    return ordered[rank]


def _summarize(samples: List[float]) -> Dict[str, float]:
    return {
        "count": len(samples),
        "mean_ms": sum(samples) / len(samples) * 1000.0,
        "p50_ms": _percentile(samples, 50) * 1000.0,
        "p95_ms": _percentile(samples, 95) * 1000.0,
        "p99_ms": _percentile(samples, 99) * 1000.0,
        "max_ms": max(samples) * 1000.0,
    }


def _workload(eil: EILSystem, corpus) -> List[Tuple[str, Callable[[], object]]]:
    """(query class, thunk) pairs covering the paper's meta-queries."""
    member = corpus.deals[0].team[0]
    concept = scope_query("End User Services")
    people = worked_with_query(member.person.full_name)
    role = role_capacity_query("cross tower TSA")
    hybrid = service_keyword_query("Storage Management Services",
                                   "data replication")
    return [
        ("concept", lambda: eil.search(concept, _USER)),
        ("people", lambda: eil.search(people, _USER)),
        ("role", lambda: eil.search(role, _USER)),
        ("hybrid", lambda: eil.search(hybrid, _USER)),
        ("keyword_baseline",
         lambda: eil.keyword_search("end user services")),
    ]


def _time_workload(
    workload: List[Tuple[str, Callable[[], object]]], rounds: int
) -> Dict[str, List[float]]:
    samples: Dict[str, List[float]] = {name: [] for name, _ in workload}
    for _ in range(rounds):
        for name, thunk in workload:
            started = time.perf_counter()
            thunk()
            samples[name].append(time.perf_counter() - started)
    return samples


def run_bench(
    deals: int = 12,
    docs: int = 40,
    rounds: int = 30,
    seed: int = 2008,
    out_path: pathlib.Path = DEFAULT_OUT,
) -> Dict[str, object]:
    """Build, measure, and write the JSON baseline; returns the report."""
    registry = obs.MetricsRegistry()
    with obs.use_registry(registry):
        build_started = time.perf_counter()
        corpus = CorpusGenerator(
            CorpusConfig(seed=seed, n_deals=deals, docs_per_deal=docs)
        ).generate()
        eil = EILSystem.build(corpus)
        build_seconds = time.perf_counter() - build_started

        workload = _workload(eil, corpus)
        for name, thunk in workload:  # warm-up, outside the sample set
            thunk()
        samples = _time_workload(workload, rounds)

        # Instrumentation overhead: same workload, recording disabled.
        obs.set_enabled(False)
        try:
            disabled_samples = _time_workload(workload, rounds)
        finally:
            obs.set_enabled(True)

    all_enabled = [s for per_class in samples.values() for s in per_class]
    all_disabled = [
        s for per_class in disabled_samples.values() for s in per_class
    ]
    enabled_mean = sum(all_enabled) / len(all_enabled)
    disabled_mean = sum(all_disabled) / len(all_disabled)
    report: Dict[str, object] = {
        "bench": "query_latency",
        "schema_version": 1,
        "created_unix": time.time(),
        "corpus": {"seed": seed, "deals": deals, "docs_per_deal": docs,
                   "documents_indexed":
                       eil.build_report.documents_indexed},
        "rounds": rounds,
        "build_seconds": build_seconds,
        "latency": _summarize(all_enabled),
        "per_class": {
            name: _summarize(per_class)
            for name, per_class in samples.items()
        },
        "observability_overhead": {
            "enabled_mean_ms": enabled_mean * 1000.0,
            "disabled_mean_ms": disabled_mean * 1000.0,
            "overhead_ratio": (
                enabled_mean / disabled_mean if disabled_mean else 1.0
            ),
        },
        "counters": {
            name: counter.value
            for name, counter in sorted(registry.counters.items())
            if name.startswith(("engine.", "db.", "query."))
        },
    }
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    return report


def test_bench_query_latency(report_writer):
    """Pytest entry: run a small bench and sanity-check the JSON."""
    report = run_bench(deals=6, docs=20, rounds=5)
    latency = report["latency"]
    assert latency["count"] > 0
    assert 0 < latency["p50_ms"] <= latency["p95_ms"] <= latency["max_ms"]
    assert DEFAULT_OUT.exists()
    parsed = json.loads(DEFAULT_OUT.read_text())
    assert parsed["bench"] == "query_latency"
    lines = [
        "E13: query latency baseline",
        f"p50 {latency['p50_ms']:.2f}ms  p95 {latency['p95_ms']:.2f}ms  "
        f"p99 {latency['p99_ms']:.2f}ms",
        f"overhead ratio (obs on/off): "
        f"{report['observability_overhead']['overhead_ratio']:.3f}",
    ]
    report_writer("E13_query_latency", "\n".join(lines))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--deals", type=int, default=12)
    parser.add_argument("--docs", type=int, default=40)
    parser.add_argument("--rounds", type=int, default=30)
    parser.add_argument("--seed", type=int, default=2008)
    parser.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUT)
    parser.add_argument("--quick", action="store_true",
                        help="small corpus + few rounds (CI smoke)")
    args = parser.parse_args()
    if args.quick:
        args.deals, args.docs, args.rounds = 5, 15, 5
    report = run_bench(args.deals, args.docs, args.rounds, args.seed,
                       args.out)
    latency = report["latency"]
    overhead = report["observability_overhead"]
    print(f"wrote {args.out}")
    print(f"queries timed : {latency['count']}")
    print(f"latency p50   : {latency['p50_ms']:.2f}ms")
    print(f"latency p95   : {latency['p95_ms']:.2f}ms")
    print(f"latency p99   : {latency['p99_ms']:.2f}ms")
    print(f"obs overhead  : {overhead['overhead_ratio']:.3f}x "
          f"(enabled {overhead['enabled_mean_ms']:.3f}ms / "
          f"disabled {overhead['disabled_mean_ms']:.3f}ms)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
