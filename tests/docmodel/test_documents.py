"""Unit tests for the enterprise document model."""

import pytest

from repro.docmodel import (
    EmailMessage,
    FormDocument,
    Presentation,
    Sheet,
    Slide,
    Spreadsheet,
    TextDocument,
)
from repro.errors import CorpusError


class TestValidation:
    def test_doc_id_required(self):
        with pytest.raises(CorpusError):
            TextDocument(doc_id="", title="t", deal_id="d1")

    def test_deal_id_required(self):
        with pytest.raises(CorpusError):
            TextDocument(doc_id="x", title="t", deal_id="")

    def test_doc_type_forced_by_class(self):
        p = Presentation(doc_id="p", title="t", deal_id="d")
        assert p.doc_type == "presentation"
        assert EmailMessage(doc_id="e", title="t", deal_id="d").doc_type == "email"

    def test_sheet_row_width_checked(self):
        with pytest.raises(CorpusError):
            Sheet("s", ("a", "b"), (("only-one",),))


class TestFormDocument:
    def test_field_value_lookup(self):
        form = FormDocument(
            doc_id="f", title="t", deal_id="d",
            fields=(("Cross Tower TSA", ""), ("Mainframe TSA", "Jane")),
        )
        assert form.field_value("cross tower tsa") == ""
        assert form.field_value("Mainframe TSA") == "Jane"
        assert form.field_value("missing") is None

    def test_fields_coerced_to_str(self):
        form = FormDocument(
            doc_id="f", title="t", deal_id="d", fields=(("n", 5),)
        )
        assert form.fields == (("n", "5"),)


class TestImmutability:
    def test_tuples_everywhere(self):
        deck = Presentation(
            doc_id="p", title="t", deal_id="d",
            slides=[Slide("a", bullets=["x"])],
        )
        assert isinstance(deck.slides, tuple)
        assert isinstance(deck.slides[0].bullets, tuple)
        sheet = Spreadsheet(
            doc_id="s", title="t", deal_id="d",
            sheets=(Sheet("s", ("h",), [["v"]]),),
        )
        assert isinstance(sheet.sheets[0].rows[0], tuple)
