"""Unit tests for workbooks and collections."""

import pytest

from repro.docmodel import (
    EngagementWorkbook,
    TextDocument,
    WorkbookCollection,
)
from repro.errors import CorpusError


def doc(doc_id, deal_id="d1"):
    return TextDocument(doc_id=doc_id, title=doc_id, deal_id=deal_id,
                        sections=(("", f"content of {doc_id}"),))


class TestWorkbook:
    def test_add_and_get(self):
        workbook = EngagementWorkbook("d1", documents=[doc("a"), doc("b")])
        assert len(workbook) == 2
        assert workbook.get("a").doc_id == "a"

    def test_deal_mismatch_rejected(self):
        workbook = EngagementWorkbook("d1")
        with pytest.raises(CorpusError):
            workbook.add(doc("x", deal_id="other"))

    def test_duplicate_rejected(self):
        workbook = EngagementWorkbook("d1", documents=[doc("a")])
        with pytest.raises(CorpusError):
            workbook.add(doc("a"))

    def test_missing_lookup(self):
        with pytest.raises(CorpusError):
            EngagementWorkbook("d1").get("zz")

    def test_documents_filtered_by_type(self):
        workbook = EngagementWorkbook("d1", documents=[doc("a")])
        assert len(workbook.documents("text")) == 1
        assert workbook.documents("presentation") == []

    def test_iter_documents_renders(self):
        workbook = EngagementWorkbook("d1", documents=[doc("a")])
        rendered = list(workbook.iter_documents())
        assert rendered[0].metadata["deal_id"] == "d1"
        assert "content of a" in rendered[0].fields["body"]

    def test_empty_deal_id_rejected(self):
        with pytest.raises(CorpusError):
            EngagementWorkbook("")


class TestCollection:
    def test_add_and_lookup(self):
        collection = WorkbookCollection(
            [EngagementWorkbook("d1"), EngagementWorkbook("d2")]
        )
        assert collection.deal_ids == ["d1", "d2"]
        assert collection.workbook("d2").deal_id == "d2"

    def test_duplicate_deal_rejected(self):
        collection = WorkbookCollection([EngagementWorkbook("d1")])
        with pytest.raises(CorpusError):
            collection.add(EngagementWorkbook("d1"))

    def test_missing_workbook(self):
        with pytest.raises(CorpusError):
            WorkbookCollection().workbook("nope")

    def test_counts_and_iteration(self):
        collection = WorkbookCollection(
            [
                EngagementWorkbook("d1", documents=[doc("a")]),
                EngagementWorkbook("d2", documents=[doc("b", "d2"),
                                                    doc("c", "d2")]),
            ]
        )
        assert collection.document_count() == 3
        assert len(collection.all_documents()) == 3
        assert len(list(collection.iter_documents())) == 3
        assert [w.deal_id for w in collection] == ["d1", "d2"]
