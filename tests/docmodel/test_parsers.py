"""Unit tests for structure-preserving parsing."""

import pytest

from repro.docmodel import (
    DocumentParser,
    EmailMessage,
    FormDocument,
    Presentation,
    Sheet,
    Slide,
    Spreadsheet,
    TextDocument,
)


@pytest.fixture
def parser():
    return DocumentParser()


class TestPresentationParsing:
    def test_slide_structure_annotated(self, parser):
        deck = Presentation(
            doc_id="p", title="Deck", deal_id="d",
            slides=(
                Slide("Win Strategy", "Pricing", ("Aggressive bid",)),
                Slide("Next Steps"),
            ),
        )
        cas = parser.to_cas(deck)
        titles = cas.select("doc.SlideTitle")
        assert [cas.covered_text(t) for t in titles] == [
            "Win Strategy", "Next Steps",
        ]
        assert titles[0]["slide_index"] == 0
        assert titles[1]["slide_index"] == 1
        subtitle = cas.select("doc.SlideSubtitle")[0]
        assert cas.covered_text(subtitle) == "Pricing"
        bullet = cas.select("doc.Bullet")[0]
        assert cas.covered_text(bullet) == "Aggressive bid"

    def test_metadata_carried(self, parser):
        deck = Presentation(doc_id="p", title="Deck", deal_id="d7",
                            repository="EWB-d7", slides=())
        cas = parser.to_cas(deck)
        assert cas.metadata["deal_id"] == "d7"
        assert cas.metadata["doc_type"] == "presentation"


class TestSpreadsheetParsing:
    def test_cells_carry_headers(self, parser):
        sheet = Spreadsheet(
            doc_id="s", title="Roster", deal_id="d",
            sheets=(Sheet("Team", ("Name", "Role"),
                          (("Sam White", "CSE"), ("Jane Doe", "TSA"))),),
        )
        cas = parser.to_cas(sheet)
        cells = cas.select("doc.Cell")
        assert len(cells) == 4
        by_content = {cas.covered_text(c): c for c in cells}
        assert by_content["Sam White"]["header"] == "Name"
        assert by_content["CSE"]["header"] == "Role"
        assert by_content["Jane Doe"]["row"] == 1

    def test_headers_annotated(self, parser):
        sheet = Spreadsheet(
            doc_id="s", title="t", deal_id="d",
            sheets=(Sheet("Team", ("Name",), ()),),
        )
        cas = parser.to_cas(sheet)
        header = cas.select("doc.SheetHeader")[0]
        assert cas.covered_text(header) == "Name"
        assert header["col"] == 0


class TestEmailParsing:
    def test_headers_annotated(self, parser):
        email = EmailMessage(
            doc_id="e", title="t", deal_id="d",
            sender="sam.white@abc.com",
            recipients=("list@corp.com",),
            subject="Need EUS references",
            body="Anyone worked a CSC deal recently?",
        )
        cas = parser.to_cas(email)
        kinds = {h["kind"]: cas.covered_text(h)
                 for h in cas.select("doc.EmailHeader")}
        assert kinds["from"] == "sam.white@abc.com"
        assert kinds["subject"] == "Need EUS references"
        assert "CSC deal" in cas.text


class TestFormParsing:
    def test_empty_fields_flagged(self, parser):
        form = FormDocument(
            doc_id="f", title="t", deal_id="d", form_name="Service Details",
            fields=(("Cross Tower TSA", ""), ("Mainframe TSA", "Jane Doe")),
        )
        cas = parser.to_cas(form)
        fields = {a["name"]: a for a in cas.select("doc.FormField")}
        assert fields["Cross Tower TSA"]["is_empty"] is True
        assert fields["Mainframe TSA"]["is_empty"] is False
        # Crucially, the *text* still contains the empty field's name —
        # this is what fools keyword search in Meta-query 3.
        assert "Cross Tower TSA" in cas.text


class TestTextParsing:
    def test_sections(self, parser):
        doc = TextDocument(
            doc_id="t", title="Minutes", deal_id="d",
            sections=(("Overview", "We met the client."),
                      ("Risks", "Timeline is tight.")),
        )
        cas = parser.to_cas(doc)
        sections = cas.select("doc.Section")
        assert [s["heading"] for s in sections] == ["Overview", "Risks"]
        assert cas.covered_text(sections[1]) == "Timeline is tight."


class TestIndexableRendering:
    def test_fields_and_metadata(self, parser):
        deck = Presentation(
            doc_id="p", title="Deck", deal_id="d",
            slides=(Slide("Win Strategy"),),
        )
        indexable = parser.to_indexable(deck)
        assert indexable.doc_id == "p"
        assert indexable.fields["title"] == "Deck"
        assert "Win Strategy" in indexable.fields["body"]
        assert indexable.metadata["deal_id"] == "d"
