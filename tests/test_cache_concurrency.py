"""Multi-threaded stress tests for LruCache and the metric primitives.

Pins down the concurrency fixes shipped with the serving PR: counter
increments must not lose updates under contention, and the
``<name>.size`` gauge must be written while the cache lock is held so
it can never drift from ``len(cache)``.
"""

import threading

import pytest

from repro import obs
from repro.cache import LruCache
from repro.obs.metrics import Counter, Histogram


@pytest.fixture
def registry():
    with obs.use_registry() as fresh:
        yield fresh


def _run_all(workers):
    threads = [threading.Thread(target=worker) for worker in workers]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


class TestMetricPrimitives:
    def test_counter_increments_are_not_lost(self, registry):
        counter = Counter("storm")
        n, per_thread = 8, 2000

        def worker():
            for _ in range(per_thread):
                counter.inc()

        _run_all([worker] * n)
        assert counter.value == n * per_thread

    def test_histogram_totals_stay_exact(self, registry):
        histogram = Histogram("storm", max_samples=128)
        n, per_thread = 8, 500

        def worker(offset):
            for i in range(per_thread):
                histogram.observe(float(offset * per_thread + i))

        _run_all([lambda o=o: worker(o) for o in range(n)])
        total = n * per_thread
        assert histogram.count == total
        assert histogram.sum == sum(range(total))
        assert histogram.min == 0.0
        assert histogram.max == float(total - 1)
        # The decimated buffer must still be sorted (percentiles walk
        # it by rank); a torn insort would break monotonicity.
        assert (
            histogram.percentile(10)
            <= histogram.percentile(50)
            <= histogram.percentile(99)
        )


class TestLruCacheConcurrency:
    def test_size_gauge_matches_len_after_concurrent_churn(
        self, registry
    ):
        cache = LruCache("c", max_entries=32)
        n, per_thread = 8, 500

        def worker(offset):
            for i in range(per_thread):
                key = offset * per_thread + i
                cache.put(key, key)
                cache.get(key)
                cache.get(key - 7)  # mix hits and misses

        _run_all([lambda o=o: worker(o) for o in range(n)])
        assert len(cache) <= 32
        # The gauge was last written under the cache lock, so after
        # quiescence it must agree exactly with the real size.
        assert registry.gauges["c.size"].value == len(cache)
        # Keys are globally unique, so every insert either lives in
        # the cache now or was evicted — and evictions were counted
        # under the same lock as the pops.
        stored = n * per_thread
        assert (
            registry.counters["c.evictions"].value
            == stored - len(cache)
        )
        reads = 2 * stored
        assert (
            registry.counters["c.hits"].value
            + registry.counters["c.misses"].value
            == reads
        )
