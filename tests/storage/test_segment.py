"""Segment codec tests: encode/decode parity, tombstones, merge, errors.

The contract under test: a :class:`Segment` encoded from an
``InvertedIndex`` must report exactly the statistics the index reports
(document frequencies, term frequencies, field lengths, positions,
metadata lookups), because the BM25 bit-identity of segment-backed
search rests on those numbers.
"""

import random

import pytest

from repro.errors import StorageError
from repro.search import IndexableDocument
from repro.search.inverted_index import InvertedIndex
from repro.storage.segment import (
    MAGIC,
    Segment,
    encode_from_index,
    merge_segments,
)

WORDS = ["network", "storage", "deal", "services", "migration",
         "finance", "audit", "client", "review", "escrow"]


def make_index(seed=11, docs=30):
    rng = random.Random(seed)
    index = InvertedIndex()
    for i in range(docs):
        index.add(
            IndexableDocument(
                f"doc{i:03d}",
                {
                    "title": " ".join(rng.choices(WORDS, k=3)),
                    "body": " ".join(rng.choices(WORDS, k=rng.randint(5, 25))),
                },
                {"deal_id": f"deal{i % 4}", "rank": i % 3},
            )
        )
    return index


@pytest.fixture(scope="module")
def index():
    return make_index()


@pytest.fixture(scope="module")
def segment(index):
    return Segment.from_bytes(encode_from_index(index))


def test_doc_round_trip(index, segment):
    assert segment.doc_count == len(index)
    for doc_id in index.doc_ids:
        original = index.document(doc_id)
        loaded = segment.document(doc_id)
        assert loaded.doc_id == original.doc_id
        assert dict(loaded.fields) == dict(original.fields)
        assert dict(loaded.metadata) == dict(original.metadata)


def test_statistics_match_index(index, segment):
    assert sorted(segment.posting_fields()) == sorted(index.fields)
    for field in index.fields:
        assert segment.live_field_docs(field) == (
            index.field_document_count(field)
        )
        assert segment.live_field_tokens(field) == (
            index.field_token_total(field)
        )
        for term in index.vocabulary(field):
            assert segment.df(field, term) == index.df(term, field)
            stored = segment.stored_max_tf(field, term)
            assert stored == index.max_tf(term, field) or stored >= max(
                tf for _, tf, _ in segment.iter_term(field, term)
            )
    for doc_id in index.doc_ids:
        for field in ("title", "body"):
            assert segment.field_length(field, doc_id) == (
                index.field_length(field, doc_id)
            )
        assert segment.total_length(doc_id) == index.total_length(doc_id)


def test_postings_and_positions_match(index, segment):
    for field in index.fields:
        for term in index.vocabulary(field):
            decoded = {
                doc_id: tf for doc_id, tf, _ in segment.iter_term(field, term)
            }
            expected = {
                doc_id: index.term_frequency(term, doc_id, field)
                for doc_id in index.matching_docs(term, field)
            }
            assert decoded == expected
            assert segment.positions(field, term) == (
                index.postings(term, field)
            )


def test_metadata_lookup(index, segment):
    for value in ("deal0", "deal3"):
        assert segment.meta_docs("deal_id", value) == (
            index.docs_with_metadata("deal_id", [value])
        )
    assert segment.meta_docs("deal_id", "nope") == set()
    assert segment.meta_docs("rank", 1) == (
        index.docs_with_metadata("rank", [1])
    )


def test_tombstone_adjusts_live_statistics(index):
    segment = Segment.from_bytes(encode_from_index(index))
    victim = "doc001"
    body_len = segment.field_length("body", victim)
    live_docs = segment.live_field_docs("body")
    live_tokens = segment.live_field_tokens("body")
    assert segment.tombstone(victim)
    assert not segment.tombstone(victim)  # second call is a no-op
    assert segment.document(victim) is None
    assert not segment.has_doc(victim)
    assert segment.live_count == segment.doc_count - 1
    assert segment.live_field_docs("body") == live_docs - 1
    assert segment.live_field_tokens("body") == live_tokens - body_len
    # df over a tombstoned segment must count live docs only.
    for field in segment.posting_fields():
        for term in segment.terms(field):
            live = sum(1 for _ in segment.iter_term(field, term))
            assert segment.df(field, term) == live
    assert victim not in segment.meta_docs("deal_id", "deal1")


def test_merge_equals_single_segment_encode():
    left, right = make_index(seed=1, docs=12), InvertedIndex()
    combined = make_index(seed=1, docs=12)
    rng = random.Random(3)
    for i in range(12, 24):
        document = IndexableDocument(
            f"doc{i:03d}",
            {"body": " ".join(rng.choices(WORDS, k=10))},
            {"deal_id": f"deal{i % 4}"},
        )
        right.add(document)
        combined.add(document)
    merged = Segment.from_bytes(
        merge_segments(
            [
                Segment.from_bytes(encode_from_index(left)),
                Segment.from_bytes(encode_from_index(right)),
            ]
        )
    )
    reference = Segment.from_bytes(encode_from_index(combined))
    assert merged.raw_bytes() == reference.raw_bytes()


def test_merge_drops_tombstoned_docs():
    index = make_index(seed=5, docs=10)
    segment = Segment.from_bytes(encode_from_index(index))
    segment.tombstone("doc002")
    segment.tombstone("doc007")
    merged = Segment.from_bytes(merge_segments([segment]))
    assert merged.doc_count == 8
    assert not merged.has_doc("doc002")
    assert not merged.tombstones
    for field in merged.posting_fields():
        for term in merged.terms(field):
            assert merged.df(field, term) > 0


def test_merge_rejects_duplicate_live_doc():
    index = make_index(seed=5, docs=4)
    segment_a = Segment.from_bytes(encode_from_index(index))
    segment_b = Segment.from_bytes(encode_from_index(index))
    with pytest.raises(StorageError):
        merge_segments([segment_a, segment_b])


def test_file_backed_segment_reads_docs_lazily(tmp_path, index):
    data = encode_from_index(index)
    path = tmp_path / "seg-000001.rsg"
    path.write_bytes(data)
    segment = Segment.open(str(path))
    try:
        assert segment.doc_count == len(index)
        for doc_id in list(index.doc_ids)[:5]:
            assert segment.document(doc_id).fields == (
                index.document(doc_id).fields
            )
        # Statistics never touch the docstore file.
        assert segment.df("body", "network") == index.df("network", "body")
    finally:
        segment.close()


def test_bad_magic_rejected():
    with pytest.raises(StorageError):
        Segment.from_bytes(b"XXXX" + b"\x00" * 32)


def test_truncated_segment_rejected(index):
    data = encode_from_index(index)
    assert data.startswith(MAGIC)
    with pytest.raises(StorageError):
        Segment.from_bytes(data[: len(data) // 4])


def test_unserializable_metadata_is_rejected():
    index = InvertedIndex()
    index.add(
        IndexableDocument(
            "d1", {"body": "hello"}, {"when": object()}
        )
    )
    with pytest.raises(StorageError):
        encode_from_index(index)
