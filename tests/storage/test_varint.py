"""Round-trip and error tests for the LEB128 varint codec."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.storage.varint import (
    encode_uint,
    read_str,
    read_uint,
    skip_uint,
    write_str,
    write_uint,
)


@pytest.mark.parametrize(
    "value", [0, 1, 127, 128, 255, 300, 16383, 16384, 2**32, 2**63]
)
def test_known_values_round_trip(value):
    buf = bytearray()
    write_uint(buf, value)
    decoded, offset = read_uint(bytes(buf), 0)
    assert decoded == value
    assert offset == len(buf)


def test_single_byte_for_small_values():
    assert len(encode_uint(0)) == 1
    assert len(encode_uint(127)) == 1
    assert len(encode_uint(128)) == 2


@given(st.integers(min_value=0, max_value=2**70))
def test_round_trip_property(value):
    data = encode_uint(value)
    decoded, offset = read_uint(data, 0)
    assert decoded == value
    assert offset == len(data)
    assert skip_uint(data, 0) == len(data)


@given(st.lists(st.integers(min_value=0, max_value=2**40), max_size=50))
def test_concatenated_stream(values):
    buf = bytearray()
    for value in values:
        write_uint(buf, value)
    data = bytes(buf)
    offset = 0
    decoded = []
    while offset < len(data):
        value, offset = read_uint(data, offset)
        decoded.append(value)
    assert decoded == values


def test_truncated_varint_raises_storage_error():
    data = encode_uint(2**40)[:-1]
    with pytest.raises(StorageError):
        read_uint(data, 0)


def test_read_past_end_raises_storage_error():
    with pytest.raises(StorageError):
        read_uint(b"", 0)


@given(st.text(max_size=80))
def test_string_round_trip(text):
    buf = bytearray()
    write_str(buf, text)
    decoded, offset = read_str(bytes(buf), 0)
    assert decoded == text
    assert offset == len(buf)


def test_truncated_string_raises_storage_error():
    buf = bytearray()
    write_str(buf, "hello world")
    with pytest.raises(StorageError):
        read_str(bytes(buf)[:-3], 0)
