"""SegmentBackedIndex lifecycle tests: LSM flow, save/load, corruption.

Two contracts:

* the store is a drop-in ``InvertedIndex``: every statistic it reports
  (df, tf, lengths, averages, metadata lookups) must equal the plain
  index over the same documents, through any sequence of adds, flushes,
  removals and merges;
* ``save``/``load`` round-trips the exact same state, and every
  corruption mode — foreign files, flipped bytes, version skew,
  truncation — is rejected with a typed :class:`StorageError`.
"""

import json
import random

import pytest

from repro.errors import SearchError, StorageError
from repro.obs import use_registry
from repro.search import IndexableDocument
from repro.search.inverted_index import InvertedIndex
from repro.storage import MANIFEST_NAME, SegmentBackedIndex

WORDS = ["network", "storage", "deal", "services", "migration",
         "finance", "audit", "client", "review", "escrow", "latency"]


def make_docs(seed=21, docs=60):
    rng = random.Random(seed)
    return [
        IndexableDocument(
            f"doc{i:03d}",
            {
                "title": " ".join(rng.choices(WORDS, k=3)),
                "body": " ".join(rng.choices(WORDS, k=rng.randint(5, 20))),
            },
            {"deal_id": f"deal{i % 5}"},
        )
        for i in range(docs)
    ]


def assert_index_equivalent(store, reference):
    assert len(store) == len(reference)
    assert set(store.doc_ids) == set(reference.doc_ids)
    assert sorted(store.fields) == sorted(reference.fields)
    for field in reference.fields:
        assert store.field_document_count(field) == (
            reference.field_document_count(field)
        )
        assert store.field_token_total(field) == (
            reference.field_token_total(field)
        )
        assert store.average_length(field) == reference.average_length(field)
        assert store.vocabulary(field) == reference.vocabulary(field)
        for term in reference.vocabulary(field):
            assert store.df(term, field) == reference.df(term, field)
            assert store.matching_docs(term, field) == (
                reference.matching_docs(term, field)
            )
            mine = store.term_postings(term, field)
            theirs = reference.term_postings(term, field)
            assert mine.doc_ids == theirs.doc_ids
            assert mine.tfs == theirs.tfs
            assert mine.lengths == theirs.lengths
    assert store.token_total() == reference.token_total()
    for doc_id in reference.doc_ids:
        assert store.total_length(doc_id) == reference.total_length(doc_id)
        assert dict(store.document(doc_id).fields) == (
            dict(reference.document(doc_id).fields)
        )
    for value in ("deal0", "deal4"):
        assert store.docs_with_metadata("deal_id", [value]) == (
            reference.docs_with_metadata("deal_id", [value])
        )


def build_pair(docs, memtable_limit=16, merge_fanout=3):
    store = SegmentBackedIndex(
        memtable_limit=memtable_limit, merge_fanout=merge_fanout
    )
    reference = InvertedIndex()
    for document in docs:
        store.add(document)
        reference.add(document)
    return store, reference


def test_pure_memtable_matches_reference():
    store, reference = build_pair(make_docs(docs=10), memtable_limit=4096)
    assert not store.segments
    assert_index_equivalent(store, reference)


def test_flush_and_tiered_merge_match_reference():
    store, reference = build_pair(make_docs(docs=60), memtable_limit=8)
    assert store.segments, "memtable limit should have forced flushes"
    assert_index_equivalent(store, reference)


def test_removals_across_memtable_and_segments():
    docs = make_docs(docs=60)
    store, reference = build_pair(docs, memtable_limit=10)
    rng = random.Random(4)
    for document in docs:
        if rng.random() < 0.4:
            store.remove(document.doc_id)
            reference.remove(document.doc_id)
    assert_index_equivalent(store, reference)
    # Re-add under new content; compiled caches must follow.
    replacement = IndexableDocument(
        docs[0].doc_id, {"body": "latency escrow latency"}, {"deal_id": "d"}
    )
    store.add(replacement)
    reference.add(replacement)
    assert_index_equivalent(store, reference)


def test_compact_collapses_to_one_clean_segment():
    docs = make_docs(docs=40)
    store, reference = build_pair(docs, memtable_limit=6)
    for doc_id in ("doc000", "doc013", "doc027"):
        store.remove(doc_id)
        reference.remove(doc_id)
    store.compact()
    assert len(store.segments) == 1
    assert not store.segments[0].tombstones
    assert len(store.memtable) == 0
    assert_index_equivalent(store, reference)


def test_duplicate_add_rejected():
    store, _ = build_pair(make_docs(docs=5), memtable_limit=2)
    with pytest.raises(SearchError):
        store.add(make_docs(docs=1)[0])


def test_remove_unknown_doc_rejected():
    store, _ = build_pair(make_docs(docs=5))
    with pytest.raises(SearchError):
        store.remove("doc999")


def test_save_load_round_trip(tmp_path):
    docs = make_docs(docs=50)
    store, reference = build_pair(docs, memtable_limit=12)
    store.remove("doc003")
    reference.remove("doc003")
    stats = store.save(str(tmp_path))
    assert stats["docs"] == len(reference)
    assert stats["bytes_per_doc"] > 0
    loaded = SegmentBackedIndex.load(str(tmp_path))
    assert_index_equivalent(loaded, reference)
    # The loaded store keeps working as a live index.
    loaded.add(
        IndexableDocument("fresh", {"body": "escrow audit"}, {})
    )
    reference.add(
        IndexableDocument("fresh", {"body": "escrow audit"}, {})
    )
    loaded.remove("doc010")
    reference.remove("doc010")
    assert_index_equivalent(loaded, reference)


def test_save_is_rerunnable_and_sweeps_orphans(tmp_path):
    store, reference = build_pair(make_docs(docs=40), memtable_limit=8)
    store.save(str(tmp_path))
    (tmp_path / "seg-999999.rsg").write_bytes(b"orphaned junk")
    for doc_id in ("doc001", "doc002"):
        store.remove(doc_id)
        reference.remove(doc_id)
    store.compact()
    store.save(str(tmp_path))
    assert not (tmp_path / "seg-999999.rsg").exists()
    manifest = json.loads((tmp_path / MANIFEST_NAME).read_text())
    referenced = {entry["file"] for entry in manifest["segments"]}
    on_disk = {p.name for p in tmp_path.glob("seg-*.rsg")}
    assert on_disk == referenced
    assert_index_equivalent(
        SegmentBackedIndex.load(str(tmp_path)), reference
    )


def test_load_missing_directory_raises(tmp_path):
    with pytest.raises(StorageError, match="manifest"):
        SegmentBackedIndex.load(str(tmp_path / "nope"))


def test_load_foreign_manifest_raises(tmp_path):
    (tmp_path / MANIFEST_NAME).write_text('{"something": "else"}')
    with pytest.raises(StorageError, match="not a segment index"):
        SegmentBackedIndex.load(str(tmp_path))


def test_load_unparseable_manifest_raises(tmp_path):
    (tmp_path / MANIFEST_NAME).write_text("{truncated")
    with pytest.raises(StorageError, match="JSON"):
        SegmentBackedIndex.load(str(tmp_path))


def test_load_version_mismatch_raises(tmp_path):
    store, _ = build_pair(make_docs(docs=5))
    store.save(str(tmp_path))
    manifest = json.loads((tmp_path / MANIFEST_NAME).read_text())
    manifest["version"] = 99
    (tmp_path / MANIFEST_NAME).write_text(json.dumps(manifest))
    with pytest.raises(StorageError, match="version"):
        SegmentBackedIndex.load(str(tmp_path))


def test_load_tampered_manifest_raises(tmp_path):
    store, _ = build_pair(make_docs(docs=5))
    store.save(str(tmp_path))
    manifest = json.loads((tmp_path / MANIFEST_NAME).read_text())
    manifest["next_segment"] = 12345
    (tmp_path / MANIFEST_NAME).write_text(json.dumps(manifest))
    with pytest.raises(StorageError, match="checksum"):
        SegmentBackedIndex.load(str(tmp_path))


def test_load_corrupt_segment_raises(tmp_path):
    store, _ = build_pair(make_docs(docs=30), memtable_limit=8)
    store.save(str(tmp_path))
    victim = next(iter(tmp_path.glob("seg-*.rsg")))
    data = bytearray(victim.read_bytes())
    data[len(data) // 2] ^= 0xFF
    victim.write_bytes(bytes(data))
    with pytest.raises(StorageError, match="checksum"):
        SegmentBackedIndex.load(str(tmp_path))


def test_load_truncated_segment_raises(tmp_path):
    store, _ = build_pair(make_docs(docs=30), memtable_limit=8)
    store.save(str(tmp_path))
    victim = next(iter(tmp_path.glob("seg-*.rsg")))
    victim.write_bytes(victim.read_bytes()[:-20])
    with pytest.raises(StorageError):
        SegmentBackedIndex.load(str(tmp_path))


def test_load_missing_segment_raises(tmp_path):
    store, _ = build_pair(make_docs(docs=30), memtable_limit=8)
    store.save(str(tmp_path))
    next(iter(tmp_path.glob("seg-*.rsg"))).unlink()
    with pytest.raises(StorageError, match="missing segment"):
        SegmentBackedIndex.load(str(tmp_path))


def test_directory_attached_store_spills_during_build(tmp_path):
    """Attached mode writes segments at flush time, not only at save."""
    store = SegmentBackedIndex(memtable_limit=8)
    store.directory = str(tmp_path)
    for document in make_docs(docs=30):
        store.add(document)
    assert list(tmp_path.glob("seg-*.rsg")), "flushes should hit disk"
    # No manifest until save(); a crash here must leave nothing loadable.
    assert not (tmp_path / MANIFEST_NAME).exists()
    store.save(str(tmp_path))
    assert (tmp_path / MANIFEST_NAME).exists()


def test_storage_gauges_flow_through_registry(tmp_path):
    with use_registry() as registry:
        store, _ = build_pair(make_docs(docs=40), memtable_limit=8)
        store.save(str(tmp_path))
        gauges = {
            name: value["value"]
            for name, value in registry.snapshot().items()
            if name.startswith("storage.") and value.get("type") == "gauge"
        }
        assert gauges["storage.segments"] == len(store.segments)
        assert gauges["storage.memtable_docs"] == 0
        assert gauges["storage.bytes_per_doc"] > 0
        assert registry.counter("storage.flushes").value > 0
