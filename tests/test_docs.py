"""Documentation quality gates.

Four checks keep the docs from rotting:

* every module under ``src/repro`` and ``benchmarks/`` carries a module
  docstring (empty ``__init__.py`` re-export stubs are exempt only if
  genuinely empty);
* every path-looking reference in ``README.md`` and ``docs/*.md``
  points at something that exists (bare ``*.py`` names may live in
  ``examples/``);
* the operations documents exist and still name the ladder's and the
  graph's metric vocabulary, so renaming a metric without updating the
  runbook fails here;
* every ``--flag`` the query cookbook (``docs/QUERIES.md``) shows is
  actually accepted by the CLI parser, so the cookbook cannot drift
  from ``repro.cli``.
"""

import ast
import pathlib
import re

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src" / "repro"
BENCHMARKS = REPO_ROOT / "benchmarks"


def _python_files():
    files = sorted(SRC.rglob("*.py"))
    files += sorted(BENCHMARKS.glob("*.py"))
    return files


class TestModuleDocstrings:
    def test_every_module_has_a_docstring(self):
        missing = []
        for path in _python_files():
            source = path.read_text()
            if not source.strip():
                continue  # genuinely empty package marker
            tree = ast.parse(source, filename=str(path))
            if not ast.get_docstring(tree):
                missing.append(str(path.relative_to(REPO_ROOT)))
        assert not missing, (
            "modules missing a module docstring: " + ", ".join(missing)
        )


_PATH_RE = re.compile(
    r"`([A-Za-z0-9_][A-Za-z0-9_./-]*\.(?:py|md|json|yml|yaml|txt))`"
)


def _path_refs(path):
    text = path.read_text()
    return sorted(
        {ref for ref in _PATH_RE.findall(text) if "*" not in ref}
    )


def _readme_path_refs():
    return _path_refs(REPO_ROOT / "README.md")


def _doc_files():
    return [REPO_ROOT / "README.md"] + sorted(
        (REPO_ROOT / "docs").glob("*.md")
    )


# Docs also name generated artifacts (graph.json, seg-*.rsg) and
# module basenames in running prose (engine.py "in repro.search");
# only repo-anchored references are checkable.
_ANCHORS = ("src/", "docs/", "tests/", "benchmarks/", "examples/")


def _checkable(ref):
    if "/" in ref:
        return ref.startswith(_ANCHORS)
    return ref.endswith((".md", ".py"))


class TestReadmeReferences:
    @pytest.mark.parametrize(
        "doc", _doc_files(), ids=lambda p: p.name
    )
    def test_docs_mention_only_existing_paths(self, doc):
        broken = []
        for ref in _path_refs(doc):
            if not _checkable(ref):
                continue
            candidates = [REPO_ROOT / ref]
            if "/" not in ref:
                # Bare module names may live in examples/ (README
                # convention) or anywhere in the source tree (the
                # architecture doc names modules inside a layer's
                # context: "engine.py" under the search layer).
                candidates.append(REPO_ROOT / "examples" / ref)
                candidates.extend(SRC.rglob(ref))
                candidates.extend(BENCHMARKS.glob(ref))
            if not any(c.exists() for c in candidates):
                broken.append(ref)
        assert not broken, (
            f"{doc.name} references nonexistent paths: " + ", ".join(broken)
        )

    def test_the_regex_actually_finds_references(self):
        # Guards the check itself: if the regex rots, the test above
        # would pass vacuously.
        refs = _readme_path_refs()
        assert "src/repro/core/search.py" in refs
        assert len(refs) >= 10


class TestOperationsDocs:
    @pytest.fixture(scope="class")
    def architecture(self):
        path = REPO_ROOT / "docs" / "ARCHITECTURE.md"
        assert path.exists(), "docs/ARCHITECTURE.md is missing"
        return path.read_text()

    @pytest.fixture(scope="class")
    def operations(self):
        path = REPO_ROOT / "docs" / "OPERATIONS.md"
        assert path.exists(), "docs/OPERATIONS.md is missing"
        return path.read_text()

    def test_architecture_covers_the_contracts(self, architecture):
        for needle in (
            "no-synopsis",
            "no-index",
            "EILUnavailableError",
            "policy_version",
            "epoch",
            "max_failure_ratio",
            # The entity-graph contracts (PR 9):
            "member_of",
            "person_key",
            "graph.json",
        ):
            assert needle in architecture, (
                f"docs/ARCHITECTURE.md no longer mentions {needle!r}"
            )

    def test_operations_names_the_ladder_metrics(self, operations):
        # The ISSUE-mandated metric vocabulary; renaming any of these
        # in code requires updating the runbook.
        for metric in (
            "faults.injected",
            "retry.attempts",
            "breaker.open",
            "query.degraded",
            "query.cache.bypassed",
            "analysis.documents_quarantined",
        ):
            assert metric in operations, (
                f"docs/OPERATIONS.md no longer documents {metric!r}"
            )

    def test_operations_names_the_graph_metrics(self, operations):
        for metric in (
            "graph.nodes",
            "graph.edges",
            "graph.deals_indexed",
            "graph.deals_removed",
            "graph.queries",
            "graph.query_seconds",
        ):
            assert metric in operations, (
                f"docs/OPERATIONS.md no longer documents {metric!r}"
            )

    def test_operations_names_the_db_metrics(self, operations):
        for metric in (
            "db.rows_scanned",
            "db.join.build_rows",
            "db.join.probe_rows",
            "db.stmt_cache.hits",
            "db.stmt_cache.misses",
            "db.stmt_cache.invalidations",
            "db.stmt_cache.evictions",
            "REPRO_DB_PLAN_CACHE",
            "REPRO_DB_PLANNER",
        ):
            assert metric in operations, (
                f"docs/OPERATIONS.md no longer documents {metric!r}"
            )

    def test_architecture_covers_the_db_engine(self, architecture):
        for needle in (
            "naive_execute_select",
            "index nested-loop",
            "build-side selection",
            "DDL epoch",
            "EXPLAIN",
        ):
            assert needle in architecture, (
                f"docs/ARCHITECTURE.md no longer mentions {needle!r}"
            )

    def test_operations_documents_the_flags_and_knobs(self, operations):
        for needle in (
            "no-synopsis",
            "no-index",
            "max_failure_ratio",
            "deadline_seconds",
            "--fault-profile",
            "quarantined",
        ):
            assert needle in operations, (
                f"docs/OPERATIONS.md no longer documents {needle!r}"
            )

    def test_docs_are_substantial(self, architecture, operations):
        assert len(architecture) > 2000
        assert len(operations) > 2000


_FLAG_RE = re.compile(r"(?<![\w-])(--[a-z][a-z-]+)")


def _cli_option_strings():
    """Every option string the CLI accepts, global + all subcommands."""
    import argparse

    from repro.cli import build_parser

    parser = build_parser()
    options = set()
    for action in parser._actions:
        options.update(action.option_strings)
        if isinstance(action, argparse._SubParsersAction):
            for subparser in action.choices.values():
                for sub_action in subparser._actions:
                    options.update(sub_action.option_strings)
    return options


class TestQueriesCookbook:
    @pytest.fixture(scope="class")
    def cookbook(self):
        path = REPO_ROOT / "docs" / "QUERIES.md"
        assert path.exists(), "docs/QUERIES.md is missing"
        return path.read_text()

    def test_covers_every_meta_query_class(self, cookbook):
        for needle in ("MQ1", "MQ2", "MQ3", "MQ4",
                       "worked-with", "role", "expertise", "overlap",
                       "graph-stats"):
            assert needle in cookbook, (
                f"docs/QUERIES.md no longer covers {needle!r}"
            )

    def test_every_flag_shown_exists_in_the_cli(self, cookbook):
        known = _cli_option_strings()
        shown = set(_FLAG_RE.findall(cookbook))
        assert shown, "the cookbook shows no CLI flags at all?"
        unknown = sorted(shown - known)
        assert not unknown, (
            "docs/QUERIES.md shows flags the CLI does not accept: "
            + ", ".join(unknown)
        )

    def test_readme_links_the_cookbook(self):
        readme = (REPO_ROOT / "README.md").read_text()
        assert "docs/QUERIES.md" in readme

    def test_cookbook_is_substantial(self, cookbook):
        assert len(cookbook) > 2000
