"""Documentation quality gates.

Three checks keep the docs from rotting:

* every module under ``src/repro`` and ``benchmarks/`` carries a module
  docstring (empty ``__init__.py`` re-export stubs are exempt only if
  genuinely empty);
* every path-looking reference in ``README.md`` points at something
  that exists (bare ``*.py`` names may live in ``examples/``);
* the two operations documents exist and still name the ladder's
  metric vocabulary, so renaming a metric without updating the runbook
  fails here.
"""

import ast
import pathlib
import re

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src" / "repro"
BENCHMARKS = REPO_ROOT / "benchmarks"


def _python_files():
    files = sorted(SRC.rglob("*.py"))
    files += sorted(BENCHMARKS.glob("*.py"))
    return files


class TestModuleDocstrings:
    def test_every_module_has_a_docstring(self):
        missing = []
        for path in _python_files():
            source = path.read_text()
            if not source.strip():
                continue  # genuinely empty package marker
            tree = ast.parse(source, filename=str(path))
            if not ast.get_docstring(tree):
                missing.append(str(path.relative_to(REPO_ROOT)))
        assert not missing, (
            "modules missing a module docstring: " + ", ".join(missing)
        )


_PATH_RE = re.compile(
    r"`([A-Za-z0-9_][A-Za-z0-9_./-]*\.(?:py|md|json|yml|yaml|txt))`"
)


def _readme_path_refs():
    text = (REPO_ROOT / "README.md").read_text()
    return sorted(
        {ref for ref in _PATH_RE.findall(text) if "*" not in ref}
    )


class TestReadmeReferences:
    def test_readme_mentions_only_existing_paths(self):
        broken = []
        for ref in _readme_path_refs():
            candidates = [REPO_ROOT / ref]
            if "/" not in ref:
                candidates.append(REPO_ROOT / "examples" / ref)
            if not any(c.exists() for c in candidates):
                broken.append(ref)
        assert not broken, (
            "README.md references nonexistent paths: " + ", ".join(broken)
        )

    def test_the_regex_actually_finds_references(self):
        # Guards the check itself: if the regex rots, the test above
        # would pass vacuously.
        refs = _readme_path_refs()
        assert "src/repro/core/search.py" in refs
        assert len(refs) >= 10


class TestOperationsDocs:
    @pytest.fixture(scope="class")
    def architecture(self):
        path = REPO_ROOT / "docs" / "ARCHITECTURE.md"
        assert path.exists(), "docs/ARCHITECTURE.md is missing"
        return path.read_text()

    @pytest.fixture(scope="class")
    def operations(self):
        path = REPO_ROOT / "docs" / "OPERATIONS.md"
        assert path.exists(), "docs/OPERATIONS.md is missing"
        return path.read_text()

    def test_architecture_covers_the_contracts(self, architecture):
        for needle in (
            "no-synopsis",
            "no-index",
            "EILUnavailableError",
            "policy_version",
            "epoch",
            "max_failure_ratio",
        ):
            assert needle in architecture, (
                f"docs/ARCHITECTURE.md no longer mentions {needle!r}"
            )

    def test_operations_names_the_ladder_metrics(self, operations):
        # The ISSUE-mandated metric vocabulary; renaming any of these
        # in code requires updating the runbook.
        for metric in (
            "faults.injected",
            "retry.attempts",
            "breaker.open",
            "query.degraded",
            "query.cache.bypassed",
            "analysis.documents_quarantined",
        ):
            assert metric in operations, (
                f"docs/OPERATIONS.md no longer documents {metric!r}"
            )

    def test_operations_documents_the_flags_and_knobs(self, operations):
        for needle in (
            "no-synopsis",
            "no-index",
            "max_failure_ratio",
            "deadline_seconds",
            "--fault-profile",
            "quarantined",
        ):
            assert needle in operations, (
                f"docs/OPERATIONS.md no longer documents {needle!r}"
            )

    def test_docs_are_substantial(self, architecture, operations):
        assert len(architecture) > 2000
        assert len(operations) > 2000
