"""Unit and property tests for retrieval metrics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.eval import dcg, evaluate_sets, f_measure, ndcg, precision, recall

id_sets = st.sets(st.integers(0, 20), max_size=15)


class TestPrecisionRecall:
    def test_paper_definitions(self):
        retrieved = {1, 2, 3, 4}
        relevant = {1, 2, 5}
        assert precision(retrieved, relevant) == 0.5
        assert recall(retrieved, relevant) == pytest.approx(2 / 3)

    def test_empty_retrieved(self):
        assert precision(set(), {1}) == 1.0
        assert recall(set(), {1}) == 0.0

    def test_empty_relevant(self):
        assert recall({1}, set()) == 1.0
        assert precision({1}, set()) == 0.0

    def test_f_measure_formula(self):
        assert f_measure(0.5, 1.0) == pytest.approx(2 / 3)
        assert f_measure(0.0, 0.0) == 0.0

    def test_paper_table2_row1(self):
        # EIL row 1 of the paper: P=0.82, R=1 -> F=0.9.
        assert f_measure(0.82, 1.0) == pytest.approx(0.9, abs=0.005)

    @given(id_sets, id_sets)
    def test_bounds(self, retrieved, relevant):
        scores = evaluate_sets(retrieved, relevant)
        assert 0.0 <= scores.precision <= 1.0
        assert 0.0 <= scores.recall <= 1.0
        assert 0.0 <= scores.f_measure <= 1.0

    @given(id_sets, id_sets)
    def test_f_between_min_and_max(self, retrieved, relevant):
        scores = evaluate_sets(retrieved, relevant)
        low = min(scores.precision, scores.recall)
        high = max(scores.precision, scores.recall)
        assert low - 1e-12 <= scores.f_measure <= high + 1e-12

    @given(id_sets)
    def test_perfect_retrieval(self, items):
        scores = evaluate_sets(items, items)
        assert scores.precision == scores.recall == 1.0


class TestNdcg:
    def test_perfect_order(self):
        relevance = {"a": 3, "b": 2, "c": 1}
        assert ndcg(["a", "b", "c"], relevance) == pytest.approx(1.0)

    def test_reversed_order_lower(self):
        relevance = {"a": 3, "b": 2, "c": 1}
        assert ndcg(["c", "b", "a"], relevance) < 1.0

    def test_missing_relevant_items_penalized(self):
        relevance = {"a": 3, "b": 3}
        assert ndcg(["a"], relevance) < 1.0

    def test_irrelevant_only(self):
        assert ndcg(["x", "y"], {"a": 1}) == 0.0

    def test_empty_relevance(self):
        assert ndcg(["x"], {}) == 1.0

    def test_k_truncation(self):
        relevance = {"a": 1, "b": 1}
        # "b" beyond k does not count.
        assert ndcg(["x", "a", "b"], relevance, k=2) < 1.0

    def test_dcg_discounting(self):
        assert dcg([1.0]) == pytest.approx(1.0)
        assert dcg([0.0, 1.0]) == pytest.approx(1.0 / 1.5849625007211562)

    @given(st.lists(st.sampled_from("abcdef"), unique=True, max_size=6))
    def test_bounds_property(self, ranked):
        relevance = {"a": 2, "b": 1}
        value = ndcg(ranked, relevance)
        assert 0.0 <= value <= 1.0 + 1e-12
