"""Unit tests for experiment-driver helpers and report types."""

import pytest

from repro.corpus import CorpusConfig, CorpusGenerator
from repro.eval import (
    TABLE2_SERVICES,
    Table2Report,
    Table2Row,
    keyword_query_for_service,
)
from repro.eval.metrics import PrfScores
from repro.search import parse_query


@pytest.fixture(scope="module")
def corpus():
    return CorpusGenerator(
        CorpusConfig(n_deals=3, docs_per_deal=14)
    ).generate()


class TestKeywordQueryBuilder:
    def test_parent_query_includes_subtypes(self, corpus):
        query = keyword_query_for_service(corpus, "End User Services")
        assert '"End User Services"' in query
        assert '"Customer Service Center"' in query
        assert '"Distributed Client Services"' in query
        assert "EUS" in query and "CSC" in query

    def test_aliases_included(self, corpus):
        query = keyword_query_for_service(corpus, "End User Services")
        assert '"Customer Services Center"' in query  # alias form

    def test_query_parses(self, corpus):
        for service in TABLE2_SERVICES:
            parse_query(keyword_query_for_service(corpus, service))

    def test_leaf_service(self, corpus):
        query = keyword_query_for_service(corpus, "Groupware")
        assert query == "Groupware"

    def test_no_duplicate_forms(self, corpus):
        query = keyword_query_for_service(corpus, "Network Services")
        parts = query.split(" OR ")
        assert len(parts) == len(set(parts))


class TestTable2Report:
    def make_report(self):
        report = Table2Report()
        report.rows.append(Table2Row(
            "q1", PrfScores(0.8, 1.0, 0.89), PrfScores(0.4, 1.0, 0.57)))
        report.rows.append(Table2Row(
            "q2", PrfScores(0.5, 0.5, 0.5), PrfScores(0.6, 1.0, 0.75)))
        return report

    def test_mean_f(self):
        eil, keyword = self.make_report().mean_f()
        assert eil == pytest.approx((0.89 + 0.5) / 2)
        assert keyword == pytest.approx((0.57 + 0.75) / 2)

    def test_eil_wins_counts_strict_wins(self):
        assert self.make_report().eil_wins() == 1

    def test_empty_report(self):
        assert Table2Report().mean_f() == (0.0, 0.0)
        assert Table2Report().eil_wins() == 0


class TestTable2Services:
    def test_ten_queries_like_the_paper(self):
        assert len(TABLE2_SERVICES) == 10

    def test_services_exist_in_taxonomy(self, corpus):
        for service in TABLE2_SERVICES:
            assert service in corpus.taxonomy
