"""Tests for the Section 2 email-study reproduction (experiment E1)."""

import pytest

from repro.corpus import CorpusConfig, CorpusGenerator
from repro.eval import MetaQueryClassifier


@pytest.fixture(scope="module")
def corpus():
    return CorpusGenerator(
        CorpusConfig(n_deals=4, docs_per_deal=15, n_threads=120)
    ).generate()


@pytest.fixture(scope="module")
def report(corpus):
    return MetaQueryClassifier().run_study(corpus.threads)


class TestClassifier:
    def test_mq1_pattern(self):
        classifier = MetaQueryClassifier()
        types = classifier.classify_text(
            "Which business engagements have a scope that involves WAN?"
        )
        assert types == frozenset({"mq1"})

    def test_mq2_pattern(self):
        classifier = MetaQueryClassifier()
        types = classifier.classify_text(
            "Who in the CSE role has worked with Sam White in ABC?"
        )
        assert "mq2" in types

    def test_mq3_pattern(self):
        classifier = MetaQueryClassifier()
        types = classifier.classify_text(
            "Who has worked in the capacity of Pricer recently?"
        )
        assert "mq3" in types

    def test_mq4_pattern(self):
        classifier = MetaQueryClassifier()
        types = classifier.classify_text(
            "Who has worked on WAN that involved MPLS routing?"
        )
        assert "mq4" in types

    def test_unrelated_text(self):
        assert MetaQueryClassifier().classify_text("lunch on friday?") == (
            frozenset()
        )


class TestStudyReproduction:
    """The paper's Section 2 numbers must come out of the classifier."""

    def test_total(self, report):
        assert report.total == 120

    def test_mq1_share_approx_38_percent(self, report):
        assert report.percentage("mq1") == pytest.approx(38.3, abs=1.0)

    def test_mq2_share_approx_17_percent(self, report):
        assert report.percentage("mq2") == pytest.approx(16.7, abs=1.0)

    def test_mq3_share_approx_36_percent(self, report):
        assert report.percentage("mq3") == pytest.approx(35.8, abs=1.0)

    def test_mq4_share_approx_29_percent(self, report):
        assert report.percentage("mq4") == pytest.approx(29.2, abs=1.0)

    def test_social_count_63_of_120(self, report):
        assert report.social_count == 63
        assert report.social_percentage() == pytest.approx(52.5, abs=0.1)

    def test_classifier_agrees_with_ground_truth(self, report):
        assert report.label_accuracy >= 0.95
