"""The fault matrix: component x fault type x rate, end to end.

The contract under test (ISSUE acceptance criteria):

* a 20% fault rate on any single component leaves the offline build
  able to complete — failing units are quarantined and reported, the
  rest of the corpus survives — and the online path able to answer
  (possibly degraded, never by crashing);
* outcomes are deterministic under a fixed injector seed, and the PR 2
  invariant (2-worker parallel build == serial build) holds for the
  surviving documents even while faults are being injected;
* the ``max_failure_ratio`` gate turns a corpus-wide failure into a
  structured :class:`BuildAbortedError` instead of silently shipping an
  empty system.
"""

import pytest

from repro import CorpusConfig, CorpusGenerator, EILSystem, User, obs
from repro.core.metaqueries import scope_query, service_keyword_query
from repro.errors import BuildAbortedError, EILUnavailableError
from repro.faults import (
    FaultInjector,
    FaultProfile,
    RetryPolicy,
    use_injector,
)

SALES = User("u", frozenset({"sales"}))
COMPONENTS = ("repository", "crawler", "analysis", "db", "index")
FAULT_KINDS = ("error", "timeout")


@pytest.fixture
def registry():
    with obs.use_registry() as fresh:
        yield fresh


@pytest.fixture(scope="module")
def corpus():
    return CorpusGenerator(
        CorpusConfig(n_deals=3, docs_per_deal=12)
    ).generate()


def _fast_retry(max_attempts=3):
    return RetryPolicy(
        max_attempts=max_attempts, base_delay=0.0, max_delay=0.0
    )


def _build(corpus, spec, seed=0, workers=1, **kwargs):
    kwargs.setdefault("retry", _fast_retry())
    injector = (
        FaultInjector(FaultProfile.parse(spec), seed=seed)
        if spec else FaultInjector()
    )
    with use_injector(injector):
        return EILSystem.build(corpus, workers=workers, **kwargs)


def _query_outcomes(eil, corpus, spec, seed=0):
    """Degradation flags for a small query workload under ``spec``."""
    forms = (
        scope_query("End User Services"),
        service_keyword_query("End User Services", "service"),
    )
    injector = FaultInjector(FaultProfile.parse(spec), seed=seed)
    outcomes = []
    with use_injector(injector):
        for form in forms:
            try:
                results = eil.search(form, SALES)
            except EILUnavailableError:
                outcomes.append("unavailable")
            else:
                outcomes.append(results.degraded or "full")
    return outcomes


class TestSingleComponentTwentyPercent:
    """The headline acceptance criterion, one cell per component."""

    @pytest.mark.parametrize("component", COMPONENTS)
    @pytest.mark.parametrize("kind", FAULT_KINDS)
    def test_build_completes_and_answers(self, corpus, registry,
                                         component, kind):
        spec = f"{component}:{kind}=0.2"
        eil = _build(corpus, spec)
        report = eil.build_report
        assert report is not None, "build must complete"
        results = eil.analysis_results
        # Quarantine accounting: every charged document is either
        # processed, failed, or quarantined-with-a-reason.
        assert results.documents_quarantined == len(results.quarantined)
        assert results.documents_failed == 0
        assert results.documents_processed > 0
        # The system stays queryable under the same injection.
        for outcome in _query_outcomes(eil, corpus, spec):
            assert outcome in ("full", "no-synopsis", "no-index")

    def test_latency_injection_only_slows(self, corpus, registry):
        spec = "analysis:latency=0.001"
        eil = _build(corpus, spec)
        assert eil.analysis_results.documents_quarantined == 0
        counter = registry.counters["faults.injected.analysis.latency"]
        assert counter.value == eil.analysis_results.documents_processed


class TestDeterminism:
    """Fixed seed => fixed outcomes, regardless of worker count."""

    @pytest.mark.parametrize("component", ("analysis", "repository"))
    def test_two_serial_builds_identical(self, corpus, registry,
                                         component):
        spec = f"{component}:error=0.6"
        first = _build(corpus, spec, seed=5)
        second = _build(corpus, spec, seed=5)
        assert first.analysis_results == second.analysis_results
        assert first.analysis_results.quarantined, (
            "60% without quarantines means the cell tested nothing"
        )

    def test_different_seeds_differ(self, corpus, registry):
        spec = "analysis:error=0.6"
        a = _build(corpus, spec, seed=1).analysis_results
        b = _build(corpus, spec, seed=2).analysis_results
        assert a.quarantined != b.quarantined

    @pytest.mark.parametrize("component", ("analysis", "repository",
                                           "crawler"))
    def test_parallel_build_matches_serial_under_injection(
        self, corpus, registry, component
    ):
        # The PR 2 invariant, under fire: keyed fault decisions hash on
        # document identity, so worker scheduling cannot change which
        # documents survive.
        spec = f"{component}:error=0.6"
        serial = _build(corpus, spec, seed=7, workers=1)
        parallel = _build(corpus, spec, seed=7, workers=2)
        assert serial.analysis_results == parallel.analysis_results
        assert (
            serial.build_report.documents_indexed
            == parallel.build_report.documents_indexed
        )

    def test_query_outcomes_deterministic(self, corpus, registry):
        eil = _build(corpus, None)
        spec = "db:error=0.5;index:error=0.5"
        first = _query_outcomes(eil, corpus, spec, seed=9)
        eil._search._cache.clear()
        second = _query_outcomes(eil, corpus, spec, seed=9)
        assert first == second


class TestFailureBudget:
    def test_max_failure_ratio_aborts_structured(self, corpus, registry):
        with pytest.raises(BuildAbortedError) as excinfo:
            _build(
                corpus, "analysis:error=1.0",
                retry=_fast_retry(max_attempts=1),
                max_failure_ratio=0.5,
            )
        report = excinfo.value.report
        assert report is not None
        assert report.failure_ratio > 0.5
        assert report.quarantined, "the abort must carry the evidence"
        assert registry.counters["cpe.builds_aborted"].value == 1

    def test_total_quarantine_within_budget_completes(self, corpus,
                                                      registry):
        # max_failure_ratio=1.0 (the default) tolerates even a fully
        # quarantined corpus: the build completes, empty but honest.
        eil = _build(
            corpus, "analysis:error=1.0",
            retry=_fast_retry(max_attempts=1),
        )
        results = eil.analysis_results
        assert results.documents_processed == 0
        assert results.documents_quarantined == len(results.quarantined)
        assert results.documents_quarantined > 0

    def test_deadline_overruns_quarantine(self, corpus, registry):
        eil = _build(corpus, None, deadline_seconds=1e-9)
        results = eil.analysis_results
        assert results.documents_processed == 0
        assert results.documents_quarantined > 0
        assert any(
            "DeadlineExceededError" in line
            for line in results.quarantined
        )


class TestQuarantineReporting:
    def test_quarantine_lines_name_the_documents(self, corpus, registry):
        eil = _build(
            corpus, "analysis:error=1.0",
            retry=_fast_retry(max_attempts=1),
        )
        for line in eil.analysis_results.quarantined:
            assert "InjectedFaultError" in line

    def test_workbook_quarantine_names_the_deal(self, corpus, registry):
        eil = _build(
            corpus, "repository:error=1.0",
            retry=_fast_retry(max_attempts=1),
        )
        results = eil.analysis_results
        assert results.quarantined
        assert all("deal" in line for line in results.quarantined)
        assert all(
            "documents skipped" in line for line in results.quarantined
        )
