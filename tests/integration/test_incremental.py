"""Integration tests for incremental deal onboarding/offboarding."""

import pytest

from repro import CorpusConfig, CorpusGenerator, EILSystem, User
from repro.core import scope_query
from repro.corpus import DealGenerator, WorkbookFactory

SALES = User("u", frozenset({"sales"}))


@pytest.fixture
def world():
    corpus = CorpusGenerator(
        CorpusConfig(n_deals=4, docs_per_deal=16)
    ).generate()
    eil = EILSystem.build(corpus)
    # A fifth deal, generated consistently with the same taxonomy.
    generator = DealGenerator(seed=999, taxonomy=corpus.taxonomy)
    new_deal = generator.generate(5)[4]
    workbook = WorkbookFactory(corpus.taxonomy, seed=999).build_workbook(
        new_deal, 16
    )
    return corpus, eil, new_deal, workbook


class TestAddWorkbook:
    def test_new_deal_becomes_searchable(self, world):
        corpus, eil, new_deal, workbook = world
        before_docs = len(eil.engine)
        eil.add_workbook(workbook)
        assert len(eil.engine) == before_docs + len(workbook)
        assert new_deal.deal_id in eil.deal_ids()
        synopsis = eil.synopsis(new_deal.deal_id, SALES)
        assert synopsis.name == new_deal.name
        assert synopsis.contacts()

    def test_new_deal_appears_in_concept_search(self, world):
        corpus, eil, new_deal, workbook = world
        eil.add_workbook(workbook)
        # Pick a service truly in the new deal's scope.
        service = new_deal.towers[0]
        results = eil.search(scope_query(service), SALES)
        assert new_deal.deal_id in results.deal_ids

    def test_existing_deals_untouched(self, world):
        corpus, eil, _, workbook = world
        before = {
            deal_id: eil.synopsis(deal_id, SALES).towers
            for deal_id in eil.deal_ids()
        }
        eil.add_workbook(workbook)
        for deal_id, towers in before.items():
            assert eil.synopsis(deal_id, SALES).towers == towers

    def test_build_report_updated(self, world):
        corpus, eil, _, workbook = world
        deals_before = eil.build_report.deals_populated
        eil.add_workbook(workbook)
        assert eil.build_report.deals_populated == deals_before + 1

    def test_add_before_build_rejected(self, world):
        corpus, _, _, workbook = world
        fresh = EILSystem(corpus.taxonomy, corpus.collection)
        with pytest.raises(RuntimeError):
            fresh.add_workbook(workbook)


class TestRemoveDeal:
    def test_removal_clears_index_and_synopsis(self, world):
        corpus, eil, _, _ = world
        victim = corpus.deals[0].deal_id
        removed = eil.remove_deal(victim)
        assert removed > 0
        assert victim not in eil.deal_ids()
        assert all(
            h.metadata.get("deal_id") != victim
            for h in eil.keyword_search("services")
        )

    def test_removed_deal_absent_from_search(self, world):
        corpus, eil, _, _ = world
        victim = corpus.deals[0]
        eil.remove_deal(victim.deal_id)
        for service in victim.towers[:2]:
            results = eil.search(scope_query(service), SALES)
            assert victim.deal_id not in results.deal_ids

    def test_roundtrip_add_after_remove(self, world):
        corpus, eil, new_deal, workbook = world
        eil.add_workbook(workbook)
        eil.remove_deal(new_deal.deal_id)
        assert new_deal.deal_id not in eil.deal_ids()

    def test_remove_unknown_deal_is_noop(self, world):
        _, eil, _, _ = world
        assert eil.remove_deal("ghost") == 0

    def test_remove_updates_build_report(self, world):
        """Regression: offboarding must not let stats drift."""
        corpus, eil, _, _ = world
        victim = corpus.deals[0].deal_id
        docs_before = eil.build_report.documents_indexed
        deals_before = eil.build_report.deals_populated
        removed = eil.remove_deal(victim)
        assert removed > 0
        assert eil.build_report.documents_indexed == docs_before - removed
        assert eil.build_report.deals_populated == deals_before - 1

    def test_remove_updates_gauge(self, world):
        from repro import obs

        corpus, eil, _, _ = world
        with obs.use_registry() as registry:
            eil.remove_deal(corpus.deals[0].deal_id)
            assert (registry.gauges["eil.deals_populated"].value
                    == eil.build_report.deals_populated)

    def test_remove_unknown_deal_keeps_stats(self, world):
        _, eil, _, _ = world
        deals_before = eil.build_report.deals_populated
        docs_before = eil.build_report.documents_indexed
        eil.remove_deal("ghost")
        assert eil.build_report.deals_populated == deals_before
        assert eil.build_report.documents_indexed == docs_before


def _synopsis_row_counts(eil, deal_id):
    counts = {}
    for table in ("deals", "deal_scopes", "contacts", "win_strategies",
                  "technologies", "client_references"):
        rows = eil.organized.db.execute(
            f"SELECT * FROM {table} WHERE deal_id = ?", [deal_id]
        ).to_dicts()
        counts[table] = len(rows)
    return counts


class TestIdempotentOnboarding:
    def test_double_add_does_not_duplicate(self, world):
        """Regression: re-onboarding must upsert, not append."""
        corpus, eil, new_deal, workbook = world
        eil.add_workbook(workbook)
        docs_after_first = len(eil.engine)
        rows_after_first = _synopsis_row_counts(eil, new_deal.deal_id)
        report_after_first = (
            eil.build_report.documents_indexed,
            eil.build_report.deals_populated,
        )
        eil.add_workbook(workbook)
        assert len(eil.engine) == docs_after_first
        assert _synopsis_row_counts(eil, new_deal.deal_id) == rows_after_first
        assert (eil.build_report.documents_indexed,
                eil.build_report.deals_populated) == report_after_first

    def test_re_add_existing_corpus_deal(self, world):
        """Onboarding a deal already present in the collection upserts."""
        corpus, eil, _, _ = world
        deal_id = corpus.deals[0].deal_id
        workbook = corpus.collection.workbook(deal_id)
        docs_before = len(eil.engine)
        rows_before = _synopsis_row_counts(eil, deal_id)
        deals_before = eil.build_report.deals_populated
        eil.add_workbook(workbook)
        assert len(eil.engine) == docs_before
        assert _synopsis_row_counts(eil, deal_id) == rows_before
        assert eil.build_report.deals_populated == deals_before

    def test_add_after_remove_leaves_single_copy(self, world):
        corpus, eil, new_deal, workbook = world
        eil.add_workbook(workbook)
        eil.remove_deal(new_deal.deal_id)
        # The workbook is still in the collection (system of record);
        # re-adding it must come back as exactly one copy.
        eil.add_workbook(workbook)
        rows = _synopsis_row_counts(eil, new_deal.deal_id)
        assert rows["deals"] == 1
        indexed = [
            doc_id for doc_id in eil.engine.index.doc_ids
            if (eil.engine.index.document(doc_id).metadata.get("deal_id")
                == new_deal.deal_id)
        ]
        assert len(indexed) == len(workbook)
