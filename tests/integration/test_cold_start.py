"""Cold-start equivalence: build → persist → load → identical answers.

The acceptance contract for persistent storage: a system loaded from
disk is indistinguishable from the freshly built one — same rankings
and counts bit-for-bit, same synopses, and the loaded system keeps
supporting incremental maintenance (``add_workbook`` / ``remove_deal``)
— including when the index was built sharded.  One test loads in a
genuinely fresh process to prove nothing leaks through interpreter
state.
"""

import dataclasses
import json
import os
import subprocess
import sys

import pytest

from repro.core.eil import EILSystem
from repro.core.metaqueries import scope_query, service_keyword_query
from repro.corpus.generator import CorpusConfig, CorpusGenerator
from repro.errors import StorageError
from repro.security.access import User

_USER = User("tester", frozenset({"sales"}))
_CONFIG = dict(seed=2008, n_deals=6, docs_per_deal=14)
_KEYWORDS = ["network migration", "help desk outsourcing", "security",
             "storage OR network OR services"]
_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(__file__))), "src"
)


@pytest.fixture(scope="module")
def corpus():
    return CorpusGenerator(CorpusConfig(**_CONFIG)).generate()


@pytest.fixture(scope="module")
def built(corpus):
    return EILSystem.build(corpus)


def keyword_fingerprint(eil):
    return [
        [
            [(hit.doc_id, hit.score) for hit in eil.keyword_search(q, 10)],
            eil.keyword_count(q),
        ]
        for q in _KEYWORDS
    ]


def form_fingerprint(eil, corpus):
    member = corpus.deals[0].team[0]
    results = []
    for form in (
        scope_query("End User Services"),
        service_keyword_query("Storage Management Services",
                              "data replication"),
    ):
        outcome = eil.search(form, _USER)
        results.append(
            [
                [(a.deal_id, a.score) for a in outcome.activities],
                outcome.scoped,
            ]
        )
    return results


def test_cold_start_same_process(built, corpus, tmp_path):
    built.save_index(str(tmp_path))
    cold = EILSystem.load(str(tmp_path), corpus)
    assert keyword_fingerprint(cold) == keyword_fingerprint(built)
    assert form_fingerprint(cold, corpus) == form_fingerprint(built, corpus)
    assert cold.deal_ids() == built.deal_ids()
    for deal_id in built.deal_ids():
        assert dataclasses.asdict(cold.synopsis(deal_id, _USER)) == (
            dataclasses.asdict(built.synopsis(deal_id, _USER))
        )
    assert cold.build_report == built.build_report


def test_cold_start_supports_mutations(built, corpus, tmp_path):
    built.save_index(str(tmp_path))
    cold = EILSystem.load(str(tmp_path), corpus)
    workbook = next(iter(corpus.collection))
    removed = cold.remove_deal(workbook.deal_id)
    assert removed > 0
    assert workbook.deal_id not in cold.deal_ids()
    cold.add_workbook(workbook)
    assert workbook.deal_id in cold.deal_ids()
    # After remove + re-add the system answers like the original.
    mutated = keyword_fingerprint(cold)
    assert [counts for _, counts in mutated] == [
        counts for _, counts in keyword_fingerprint(built)
    ]


def test_cold_start_fresh_process(built, corpus, tmp_path):
    built.save_index(str(tmp_path))
    script = (
        "import json, sys\n"
        "from repro.core.eil import EILSystem\n"
        "from repro.corpus.generator import CorpusConfig, CorpusGenerator\n"
        f"corpus = CorpusGenerator(CorpusConfig(**{_CONFIG!r})).generate()\n"
        f"eil = EILSystem.load({str(tmp_path)!r}, corpus)\n"
        f"queries = {_KEYWORDS!r}\n"
        "out = [[[ [h.doc_id, h.score] for h in eil.keyword_search(q, 10)],\n"
        "        eil.keyword_count(q)] for q in queries]\n"
        "print(json.dumps(out))\n"
    )
    env = dict(os.environ, PYTHONPATH=_SRC)
    result = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True, text=True, env=env, timeout=120,
    )
    assert result.returncode == 0, result.stderr
    fresh = json.loads(result.stdout)
    local = json.loads(json.dumps([
        [[[d, s] for d, s in hits], count]
        for hits, count in keyword_fingerprint(built)
    ]))
    assert fresh == local


def test_cold_start_sharded(corpus, tmp_path):
    built = EILSystem.build(corpus, shards=2)
    built.save_index(str(tmp_path))
    # REPRO_SHARDS must NOT override the persisted partitioning.
    os.environ["REPRO_SHARDS"] = "3"
    try:
        cold = EILSystem.load(str(tmp_path), corpus)
    finally:
        del os.environ["REPRO_SHARDS"]
    assert cold.shards == 2
    assert keyword_fingerprint(cold) == keyword_fingerprint(built)
    workbook = next(iter(corpus.collection))
    assert cold.remove_deal(workbook.deal_id) > 0
    cold.add_workbook(workbook)


def test_shard_mismatch_rejected(corpus, tmp_path):
    EILSystem.build(corpus, shards=2).save_index(str(tmp_path))
    with pytest.raises(StorageError, match="shard"):
        EILSystem.load(str(tmp_path), corpus, shards=4)


def test_missing_or_foreign_directory_rejected(corpus, tmp_path):
    with pytest.raises(StorageError):
        EILSystem.load(str(tmp_path / "absent"), corpus)
    (tmp_path / EILSystem.EIL_MANIFEST).write_text('{"format": "other"}')
    with pytest.raises(StorageError, match="manifest"):
        EILSystem.load(str(tmp_path), corpus)
