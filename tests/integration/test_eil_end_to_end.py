"""End-to-end integration tests: corpus -> offline build -> online search.

One small corpus and one EIL build are shared module-wide; every test
exercises the full stack (generator, parsers, annotators, CPEs, DB,
index, Figure 1 search, access control, presentation).
"""

import pytest

from repro import (
    ANONYMOUS,
    AccessController,
    CorpusConfig,
    CorpusGenerator,
    EILSystem,
    FormQuery,
    User,
    render_deal_list,
    render_results,
    render_synopsis,
)
from repro.core import (
    role_capacity_query,
    scope_query,
    service_keyword_query,
    worked_with_query,
)
from repro.errors import AccessDeniedError, QuerySyntaxError

SALES = User("alice", frozenset({"sales"}))


@pytest.fixture(scope="module")
def corpus():
    return CorpusGenerator(
        CorpusConfig(n_deals=8, docs_per_deal=28, n_threads=24)
    ).generate()


@pytest.fixture(scope="module")
def eil(corpus):
    return EILSystem.build(corpus)


class TestOfflineBuild:
    def test_build_report_counts(self, corpus, eil):
        report = eil.build_report
        assert report.documents_indexed == corpus.document_count
        assert report.documents_analyzed == corpus.document_count
        assert report.documents_failed == 0
        assert report.deals_populated == len(corpus.deals)

    def test_every_deal_has_synopsis(self, corpus, eil):
        assert set(eil.deal_ids()) == {d.deal_id for d in corpus.deals}

    def test_synopsis_overview_matches_ground_truth(self, corpus, eil):
        deal = corpus.deals[0]
        synopsis = eil.synopsis(deal.deal_id, SALES)
        assert synopsis.name == deal.name
        assert synopsis.overview["Customer name"] == deal.customer
        assert synopsis.overview["Industry"] == deal.industry
        assert synopsis.overview["Total Contract Value"] == deal.value_band

    def test_synopsis_people_cover_team(self, corpus, eil):
        deal = corpus.deals[0]
        contacts = {
            c.name for c in eil.synopsis(deal.deal_id, SALES).contacts()
        }
        truth = {m.person.full_name for m in deal.team}
        # The annotators must recover at least 90% of the real team.
        assert len(contacts & truth) >= 0.9 * len(truth)

    def test_synopsis_towers_mostly_correct(self, corpus, eil):
        correct = total = 0
        for deal in corpus.deals:
            extracted = set(eil.synopsis(deal.deal_id, SALES).towers)
            truth = set(deal.towers)
            correct += len(extracted & truth)
            total += len(extracted)
        assert correct / total >= 0.8  # scope precision across deals

    def test_win_strategies_extracted(self, corpus, eil):
        deal = corpus.deals[0]
        synopsis = eil.synopsis(deal.deal_id, SALES)
        assert synopsis.win_strategies
        for strategy in deal.win_strategies:
            assert any(strategy in s for s in synopsis.win_strategies)


class TestMetaQuery1:
    def test_scope_search_matches_truth(self, corpus, eil):
        truth = {
            d.deal_id
            for d in corpus.deals_with_service("Storage Management Services")
        }
        results = eil.search(
            scope_query("Storage Management Services"), SALES
        )
        retrieved = set(results.deal_ids)
        assert truth  # the corpus must exercise the query
        assert len(retrieved & truth) / len(truth) >= 0.6
        if retrieved:
            assert len(retrieved & truth) / len(retrieved) >= 0.6

    def test_parent_concept_finds_subtype_deals(self, corpus, eil):
        truth = {
            d.deal_id for d in corpus.deals_with_service("End User Services")
        }
        retrieved = set(
            eil.search(scope_query("End User Services"), SALES).deal_ids
        )
        assert retrieved & truth

    def test_acronym_accepted_as_concept(self, eil):
        by_name = eil.search(scope_query("End User Services"), SALES)
        by_acronym = eil.search(scope_query("EUS"), SALES)
        assert by_name.deal_ids == by_acronym.deal_ids


class TestMetaQuery2:
    def test_people_search_finds_their_deals(self, corpus, eil):
        member = corpus.deals[0].team[0]
        results = eil.search(
            worked_with_query(member.person.full_name), SALES
        )
        assert corpus.deals[0].deal_id in results.deal_ids

    def test_people_tab_has_roles_and_contact_details(self, corpus, eil):
        deal = corpus.deals[0]
        synopsis = eil.synopsis(deal.deal_id, SALES)
        categorized = synopsis.people
        assert "core deal team" in categorized or (
            "technical support team" in categorized
        )
        some_contact = synopsis.contacts()[0]
        assert some_contact.name


class TestMetaQuery3:
    def test_role_search(self, corpus, eil):
        results = eil.search(role_capacity_query("cross tower TSA"), SALES)
        truth = {
            d.deal_id
            for d in corpus.deals
            if d.members_with_role(
                "Cross Tower Technical Solution Architect"
            )
        }
        assert set(results.deal_ids) & truth


class TestMetaQuery4:
    def test_hybrid_query_scopes_siapi(self, corpus, eil):
        results = eil.search(
            service_keyword_query("Storage Management Services",
                                  "data replication"),
            SALES,
        )
        assert results.scoped or not results.activities

    def test_hybrid_results_have_documents(self, corpus, eil):
        results = eil.search(
            service_keyword_query("Storage Management Services",
                                  "data replication"),
            SALES,
        )
        for activity in results.activities:
            assert activity.documents  # access is open by default

    def test_hybrid_truth_alignment(self, corpus, eil):
        truth = {
            d.deal_id
            for d in corpus.deals
            if d.has_service(corpus.taxonomy, "Storage Management Services")
            and "data replication" in {t for _, t in d.technologies}
        }
        results = eil.search(
            service_keyword_query("Storage Management Services",
                                  "data replication"),
            SALES,
        )
        assert truth <= set(results.deal_ids) or not truth


class TestAccessControl:
    def test_anonymous_rejected(self, eil):
        with pytest.raises(AccessDeniedError):
            eil.search(scope_query("WAN"), ANONYMOUS)
        with pytest.raises(AccessDeniedError):
            eil.synopsis(eil.deal_ids()[0], ANONYMOUS)

    def test_documents_withheld_without_repository_access(self, corpus):
        access = AccessController(default_open=False)
        eil = EILSystem.build(corpus, access=access)
        results = eil.search(
            service_keyword_query("Storage Management Services",
                                  "data replication"),
            SALES,
        )
        for activity in results.activities:
            assert activity.documents == []
            assert activity.documents_withheld
        # But the synopsis — including the contact list — is available.
        if results.activities:
            synopsis = eil.synopsis(results.activities[0].deal_id, SALES)
            assert synopsis.contacts()

    def test_granted_user_sees_documents(self, corpus):
        access = AccessController(default_open=False)
        for workbook in corpus.collection:
            access.grant_user(workbook.name, "alice")
        eil = EILSystem.build(corpus, access=access)
        results = eil.search(
            service_keyword_query("Storage Management Services",
                                  "data replication"),
            SALES,
        )
        assert any(a.documents for a in results.activities) or (
            not results.activities
        )


class TestSearchMechanics:
    def test_empty_form_rejected(self, eil):
        with pytest.raises(QuerySyntaxError):
            eil.search(FormQuery(), SALES)

    def test_limit(self, eil):
        results = eil.search(FormQuery(all_words="services"), SALES,
                             limit=2)
        assert len(results.activities) <= 2

    def test_unscoped_fallback_when_no_synopsis_match(self, eil):
        # Concept that matches nothing + text -> unscoped SIAPI branch
        # (Fig. 1 steps 12-15): keyword results still come back, but
        # without activity scoping.
        results = eil.search(
            FormQuery(industry="NoSuchIndustry", all_words="services"),
            SALES,
        )
        assert not results.scoped
        assert results.activities  # unscoped keyword hits

    def test_concept_only_no_match_is_empty(self, eil):
        results = eil.search(FormQuery(industry="NoSuchIndustry"), SALES)
        assert results.activities == []

    def test_keyword_only_query_unscoped(self, eil):
        results = eil.search(FormQuery(all_words="replication"), SALES)
        assert not results.scoped

    def test_plan_recorded(self, eil):
        results = eil.search(scope_query("WAN"), SALES)
        assert any("synopsis query" in step for step in results.plan)

    def test_deterministic_results(self, eil):
        first = eil.search(scope_query("WAN"), SALES).deal_ids
        second = eil.search(scope_query("WAN"), SALES).deal_ids
        assert first == second


class TestPresentation:
    def test_render_synopsis(self, corpus, eil):
        text = render_synopsis(eil.synopsis(corpus.deals[0].deal_id, SALES))
        assert corpus.deals[0].name in text
        assert "[People]" in text
        assert "[Win Strategies]" in text

    def test_render_deal_list(self, corpus, eil):
        synopses = [
            eil.synopsis(deal_id, SALES) for deal_id in eil.deal_ids()[:3]
        ]
        text = render_deal_list(synopses)
        assert synopses[0].name in text

    def test_render_results_with_documents(self, eil):
        results = eil.search(
            service_keyword_query("Storage Management Services",
                                  "data replication"),
            SALES,
        )
        text = render_results(results)
        if results.activities:
            assert "%" in text
        else:
            assert "No matching" in text

    def test_render_empty_results(self, eil):
        results = eil.search(
            FormQuery(industry="NoSuchIndustry", all_words="qqq"), SALES
        )
        assert render_results(results) == "No matching business activities."


class TestKeywordBaseline:
    def test_keyword_search_over_same_index(self, corpus, eil):
        hits = eil.keyword_search('"data replication"')
        assert hits
        assert all("deal_id" in h.metadata for h in hits)

    def test_keyword_count(self, eil):
        assert eil.keyword_count("services") == len(
            eil.keyword_search("services")
        )


class TestConceptSuggestions:
    def test_did_you_mean_in_plan(self, eil):
        results = eil.search(
            FormQuery(tower="Storage Managment Servces"), SALES
        )
        assert any("did you mean" in step and
                   "Storage Management Services" in step
                   for step in results.plan)

    def test_known_concept_no_suggestion(self, eil):
        results = eil.search(FormQuery(tower="WAN"), SALES)
        assert not any("did you mean" in step for step in results.plan)
