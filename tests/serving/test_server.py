"""Unit tests for the serving front door (repro.serving.server).

Uses a gate-controlled fake system so admission, queueing, shedding,
deadline rejection and breaker integration can be driven
deterministically — no sleeps, no real corpus.
"""

import threading

import pytest

from repro import obs
from repro.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    InjectedFaultError,
    ServerOverloadedError,
)
from repro.faults import CircuitBreaker
from repro.serving import EILServer


@pytest.fixture
def registry():
    with obs.use_registry() as fresh:
        yield fresh


class FakeClock:
    def __init__(self):
        self.now = 0.0
        self._lock = threading.Lock()

    def __call__(self):
        with self._lock:
            return self.now

    def advance(self, seconds):
        with self._lock:
            self.now += seconds


class GatedSystem:
    """A fake EIL whose requests block until the gate opens."""

    def __init__(self):
        self.gate = threading.Event()
        self.gate.set()  # open by default
        self.started = threading.Semaphore(0)
        self.calls = 0
        self._lock = threading.Lock()

    def search(self, form, user=None, limit=None):
        with self._lock:
            self.calls += 1
        self.started.release()
        assert self.gate.wait(10), "gate never opened"
        return ("search", form)

    def keyword_search(self, query, limit=None):
        with self._lock:
            self.calls += 1
        self.started.release()
        assert self.gate.wait(10), "gate never opened"
        return ("keyword", query)

    def graph_query(self, query):
        with self._lock:
            self.calls += 1
        self.started.release()
        assert self.gate.wait(10), "gate never opened"
        return ("graph", query)


class TestPassThrough:
    def test_search_returns_the_result(self, registry):
        with EILServer(GatedSystem()) as server:
            assert server.search("q") == ("search", "q")
        assert registry.counters["serving.completed"].value == 1
        assert registry.counters["serving.admitted"].value == 1

    def test_keyword_search_returns_the_result(self, registry):
        with EILServer(GatedSystem()) as server:
            assert server.keyword_search("q") == ("keyword", "q")

    def test_graph_query_returns_the_result(self, registry):
        with EILServer(GatedSystem()) as server:
            assert server.graph_query("gq") == ("graph", "gq")
        assert registry.counters["serving.completed"].value == 1

    def test_graph_query_passes_admission_control(self, registry):
        """Graph traversals shed exactly like searches under load."""
        system = GatedSystem()
        system.gate.clear()
        with EILServer(system, max_concurrency=1,
                       queue_depth=0) as server:
            first = server.submit_graph_query("gq1")
            assert system.started.acquire(timeout=10)
            with pytest.raises(ServerOverloadedError):
                server.submit_graph_query("gq2")
            system.gate.set()
            assert first.result(timeout=10) == ("graph", "gq1")
        assert registry.counters["serving.shed"].value == 1

    def test_validates_sizing(self, registry):
        with pytest.raises(ValueError):
            EILServer(GatedSystem(), max_concurrency=0)
        with pytest.raises(ValueError):
            EILServer(GatedSystem(), queue_depth=-1)

    def test_exceptions_propagate_and_count(self, registry):
        class Exploding:
            def search(self, *args, **kwargs):
                raise KeyError("boom")

        with EILServer(Exploding()) as server:
            with pytest.raises(KeyError):
                server.search("q")
        assert registry.counters["serving.errors"].value == 1


class TestAdmissionControl:
    def test_sheds_past_capacity(self, registry):
        system = GatedSystem()
        system.gate.clear()  # hold every admitted request in flight
        server = EILServer(system, max_concurrency=1, queue_depth=1)
        try:
            first = server.submit_search("a")
            assert system.started.acquire(timeout=5)  # executing
            second = server.submit_search("b")  # queued
            with pytest.raises(ServerOverloadedError):
                server.submit_search("c")  # 1 + 1 slots are taken
            assert registry.counters["serving.shed"].value == 1
            assert registry.counters["serving.admitted"].value == 2
            system.gate.set()
            assert first.result(timeout=5) == ("search", "a")
            assert second.result(timeout=5) == ("search", "b")
        finally:
            system.gate.set()
            server.shutdown()
        assert registry.counters["serving.completed"].value == 2
        assert registry.gauges["serving.inflight"].value == 0
        assert registry.gauges["serving.queue_depth"].value == 0

    def test_slot_frees_after_completion(self, registry):
        system = GatedSystem()
        server = EILServer(system, max_concurrency=1, queue_depth=0)
        try:
            # Sequential requests reuse the single slot freely.
            for i in range(5):
                assert server.search(i) == ("search", i)
        finally:
            server.shutdown()
        assert registry.counters["serving.admitted"].value == 5
        assert "serving.shed" not in registry.counters

    def test_shutdown_rejects_new_requests(self, registry):
        server = EILServer(GatedSystem())
        server.shutdown()
        with pytest.raises(RuntimeError):
            server.search("q")


class TestDeadlines:
    def test_expired_in_queue_is_rejected_unstarted(self, registry):
        clock = FakeClock()
        system = GatedSystem()
        system.gate.clear()
        server = EILServer(
            system, max_concurrency=1, queue_depth=1, clock=clock
        )
        try:
            blocker = server.submit_search("a")
            assert system.started.acquire(timeout=5)
            queued = server.submit_search("b", deadline_seconds=5.0)
            clock.advance(10.0)  # the queued request ages out
            system.gate.set()
            assert blocker.result(timeout=5) == ("search", "a")
            with pytest.raises(DeadlineExceededError):
                queued.result(timeout=5)
        finally:
            system.gate.set()
            server.shutdown()
        assert registry.counters["serving.rejected.deadline"].value == 1
        # The aged-out request never reached the system: one worker
        # spent zero effort on an unmeetable deadline.
        assert system.calls == 1

    def test_fresh_deadline_executes(self, registry):
        clock = FakeClock()
        with EILServer(GatedSystem(), clock=clock) as server:
            assert server.search("a", deadline_seconds=5.0) == (
                "search", "a"
            )
        assert "serving.rejected.deadline" not in registry.counters


class TestBreakerIntegration:
    def test_persistent_outage_trips_to_fast_fail(self, registry):
        class Failing:
            calls = 0

            def search(self, *args, **kwargs):
                Failing.calls += 1
                raise InjectedFaultError("substrate down")

        breaker = CircuitBreaker("serving", failure_threshold=2)
        with EILServer(Failing(), breaker=breaker) as server:
            for _ in range(2):
                with pytest.raises(InjectedFaultError):
                    server.search("q")
            with pytest.raises(CircuitOpenError):
                server.search("q")  # open: rejected without a call
        assert Failing.calls == 2
        assert registry.counters["breaker.open.serving"].value == 1
        assert registry.counters["serving.errors"].value == 3

    def test_latency_histogram_observes_every_request(self, registry):
        with EILServer(GatedSystem()) as server:
            for i in range(3):
                server.search(i)
        assert registry.histograms["serving.latency"].count == 3
        assert registry.histograms["serving.queue_wait"].count == 3
