"""Equivalence tests: sharded fan-out must rank bit-identically.

The whole point of :class:`~repro.serving.ShardedSearchEngine` is that
partitioning is invisible to relevance: every (doc_id, score) pair —
including tie-breaks — must equal the unsharded engine's, at any shard
count, for every query shape, before and after mutations.
"""

import random

import pytest

from repro import CorpusConfig, CorpusGenerator, EILSystem, User
from repro.core.metaqueries import (
    role_capacity_query,
    scope_query,
    service_keyword_query,
    worked_with_query,
)
from repro.errors import SearchError
from repro.search import IndexableDocument, SearchEngine
from repro.serving import ShardedSearchEngine, shard_for

SALES = User("u", frozenset({"sales"}))

WORDS = [
    "storage", "network", "migration", "replication", "services",
    "desktop", "server", "cloud", "backup", "security", "transition",
    "helpdesk",
]

QUERIES = [
    "storage",
    "storage network",
    "storage OR backup OR cloud",
    "services NOT cloud",
    "(storage OR network) migration",
    "title:storage",
]


def _make_docs(n=24, deals=5):
    rng = random.Random(7)
    docs = []
    for i in range(n):
        docs.append(
            IndexableDocument(
                f"doc{i:02d}",
                {
                    "title": " ".join(
                        rng.choice(WORDS) for _ in range(3)
                    ),
                    "body": " ".join(
                        rng.choice(WORDS) for _ in range(30)
                    ),
                },
                {"deal_id": f"d{i % deals}", "doc_type": "scope"},
            )
        )
    return docs


def _pairs(hits):
    return [(hit.doc_id, hit.score) for hit in hits]


def _assert_equivalent(reference, sharded, limit=None, doc_filter=None):
    for query in QUERIES:
        assert _pairs(
            sharded.search(query, limit, doc_filter)
        ) == _pairs(
            reference.search(query, limit, doc_filter)
        ), query
        assert sharded.count(query, doc_filter) == reference.count(
            query, doc_filter
        ), query


class TestShardFor:
    def test_stable_and_in_range(self):
        for key in ("d1", "deal-xyz", 42):
            assert shard_for(key, 4) == shard_for(key, 4)
            assert 0 <= shard_for(key, 4) < 4

    def test_validates_shard_count(self):
        with pytest.raises(ValueError):
            shard_for("d1", 0)
        with pytest.raises(ValueError):
            ShardedSearchEngine(shards=0)


class TestEngineEquivalence:
    @pytest.mark.parametrize("shards", [1, 2, 3, 5])
    def test_rankings_bit_identical(self, shards):
        docs = _make_docs()
        reference = SearchEngine()
        reference.add_all(docs)
        sharded = ShardedSearchEngine(shards=shards)
        sharded.add_all(docs)
        _assert_equivalent(reference, sharded)
        for limit in (1, 3, 10, 100):
            _assert_equivalent(reference, sharded, limit=limit)

    def test_doc_filter_equivalence(self):
        docs = _make_docs()
        reference = SearchEngine()
        reference.add_all(docs)
        sharded = ShardedSearchEngine(shards=3)
        sharded.add_all(docs)
        keep = {doc.doc_id for doc in docs[::2]}
        _assert_equivalent(reference, sharded, doc_filter=keep)

    def test_equivalence_survives_removals(self):
        docs = _make_docs()
        reference = SearchEngine()
        reference.add_all(docs)
        sharded = ShardedSearchEngine(shards=3)
        sharded.add_all(docs)
        for doc in docs[::3]:
            reference.remove(doc.doc_id)
            sharded.remove(doc.doc_id)
            _assert_equivalent(reference, sharded, limit=5)

    def test_parallel_fanout_matches_serial(self):
        docs = _make_docs()
        serial = ShardedSearchEngine(shards=3)
        serial.add_all(docs)
        parallel = ShardedSearchEngine(shards=3, fanout_workers=3)
        parallel.add_all(docs)
        try:
            for query in QUERIES:
                assert _pairs(parallel.search(query)) == _pairs(
                    serial.search(query)
                )
        finally:
            parallel.close()

    def test_deal_documents_share_a_shard(self):
        sharded = ShardedSearchEngine(shards=4)
        sharded.add_all(_make_docs())
        owners = {}
        for doc_id, shard in sharded._doc_shard.items():
            deal = sharded.index.document(doc_id).metadata["deal_id"]
            assert owners.setdefault(deal, shard) is shard

    def test_remove_unknown_doc_raises(self):
        sharded = ShardedSearchEngine(shards=2)
        with pytest.raises(SearchError):
            sharded.remove("ghost")


class TestIndexView:
    @pytest.fixture
    def pair(self):
        docs = _make_docs()
        reference = SearchEngine()
        reference.add_all(docs)
        sharded = ShardedSearchEngine(shards=3)
        sharded.add_all(docs)
        return reference, sharded

    def test_global_statistics_match(self, pair):
        reference, sharded = pair
        assert len(sharded.index) == len(reference.index)
        for field in (None, "title", "body"):
            assert sharded.index.average_length(
                field
            ) == reference.index.average_length(field)
        for term in WORDS:
            assert sharded.index.df(term, "body") == reference.index.df(
                term, "body"
            )
            assert sharded.index.document_frequency(
                term
            ) == reference.index.document_frequency(term)

    def test_structure_walks_match(self, pair):
        reference, sharded = pair
        assert sharded.index.doc_ids == reference.index.doc_ids
        assert sharded.index.fields == sorted(reference.index.fields)
        assert sharded.index.docs_with_metadata(
            "deal_id", ["d1", "d2"]
        ) == reference.index.docs_with_metadata("deal_id", ["d1", "d2"])
        assert sharded.index.has_document("doc00")
        assert not sharded.index.has_document("ghost")
        doc = sharded.index.document("doc03")
        assert doc.doc_id == "doc03"

    def test_epoch_bumps_on_every_mutation(self, pair):
        _, sharded = pair
        before = sharded.epoch
        sharded.remove("doc00")
        assert sharded.epoch == before + 1
        assert all(
            shard.epoch >= before + 1 for shard in sharded.shards
        )


class TestSystemEquivalence:
    @pytest.fixture(scope="class")
    def world(self):
        corpus = CorpusGenerator(
            CorpusConfig(n_deals=4, docs_per_deal=14)
        ).generate()
        # shards=1 pinned explicitly: the baseline must stay unsharded
        # even when $REPRO_SHARDS defaults the rest of the suite.
        unsharded = EILSystem.build(corpus, shards=1)
        sharded = EILSystem.build(corpus, shards=3)
        return corpus, unsharded, sharded

    def _forms(self, corpus):
        member = corpus.deals[0].team[0]
        return [
            scope_query("End User Services"),
            worked_with_query(member.person.full_name),
            role_capacity_query("cross tower TSA"),
            service_keyword_query(
                "Storage Management Services", "data replication"
            ),
        ]

    def test_sharded_system_uses_sharded_engine(self, world):
        _, unsharded, sharded = world
        assert isinstance(sharded.engine, ShardedSearchEngine)
        assert isinstance(unsharded.engine, SearchEngine)

    def test_form_queries_identical(self, world):
        corpus, unsharded, sharded = world
        for form in self._forms(corpus):
            left = unsharded.search(form, SALES)
            right = sharded.search(form, SALES)
            assert [a.deal_id for a in left.activities] == [
                a.deal_id for a in right.activities
            ]
            assert [a.score for a in left.activities] == [
                a.score for a in right.activities
            ]

    def test_keyword_search_identical(self, world):
        _, unsharded, sharded = world
        for query in ("end user services", "storage migration",
                      "replication"):
            assert _pairs(
                sharded.keyword_search(query, limit=10)
            ) == _pairs(unsharded.keyword_search(query, limit=10))

    def test_offboard_then_identical(self, world):
        corpus, _, _ = world
        # Fresh systems: this test mutates, the class fixture is shared.
        unsharded = EILSystem.build(corpus, shards=1)
        sharded = EILSystem.build(corpus, shards=3)
        victim = sorted(unsharded.deal_ids())[0]
        removed_left = unsharded.remove_deal(victim)
        removed_right = sharded.remove_deal(victim)
        assert removed_left == removed_right
        for query in ("end user services", "storage migration"):
            assert _pairs(
                sharded.keyword_search(query, limit=10)
            ) == _pairs(unsharded.keyword_search(query, limit=10))
        for form in self._forms(corpus):
            assert [
                a.deal_id
                for a in unsharded.search(form, SALES).activities
            ] == [
                a.deal_id
                for a in sharded.search(form, SALES).activities
            ]
