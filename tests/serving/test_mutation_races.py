"""Mutation-race tests: queries racing mutations see quiesced epochs.

The serving PR's snapshot promise: a query racing ``add`` / ``remove``
(engine level) or ``add_workbook`` / ``remove_deal`` (system level)
always returns a ranking **bit-identical to some quiesced epoch** —
the corpus as it was before or after a whole mutation, never a torn
index observed mid-write.

The proof technique: replay the mutation script serially first,
recording the ranking at every quiesced state; then race concurrent
readers against a writer replaying the same script and assert every
observed ranking is in the recorded set.
"""

import random
import threading

import pytest

from repro import CorpusConfig, CorpusGenerator, EILSystem, User
from repro.core.metaqueries import scope_query
from repro.docmodel.repository import EngagementWorkbook
from repro.corpus import DealGenerator, WorkbookFactory
from repro.search import IndexableDocument, SearchEngine
from repro.serving import ShardedSearchEngine

SALES = User("u", frozenset({"sales"}))

WORDS = [
    "storage", "network", "migration", "replication", "services",
    "desktop", "server", "cloud", "backup", "security",
]

QUERY = "storage OR network OR services"


def _make_docs(n=20, deals=4):
    rng = random.Random(11)
    return [
        IndexableDocument(
            f"doc{i:02d}",
            {
                "title": " ".join(rng.choice(WORDS) for _ in range(3)),
                "body": " ".join(rng.choice(WORDS) for _ in range(25)),
            },
            {"deal_id": f"d{i % deals}", "doc_type": "scope"},
        )
        for i in range(n)
    ]


def _ranking(engine, limit=10):
    return tuple(
        (hit.doc_id, hit.score)
        for hit in engine.search(QUERY, limit)
    )


class TestEngineSnapshotIsolation:
    """Concurrent readers vs a writer churning five documents."""

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: SearchEngine(),
            lambda: ShardedSearchEngine(shards=3),
        ],
        ids=["unsharded", "sharded"],
    )
    def test_rankings_match_some_quiesced_epoch(self, factory):
        docs = _make_docs()
        churned = docs[:5]

        # Serial replay: record the ranking at every quiesced state.
        replay = factory()
        replay.add_all(docs)
        allowed = {_ranking(replay)}
        for doc in churned:
            replay.remove(doc.doc_id)
            allowed.add(_ranking(replay))
        for doc in churned:
            replay.add(doc)
            allowed.add(_ranking(replay))

        engine = factory()
        engine.add_all(docs)
        stop = threading.Event()
        observed = []
        observed_lock = threading.Lock()
        failures = []

        def reader():
            local = []
            try:
                while not stop.is_set():
                    local.append(_ranking(engine))
            except BaseException as exc:  # pragma: no cover - fail loud
                failures.append(exc)
            with observed_lock:
                observed.extend(local)

        def writer():
            try:
                for _ in range(10):
                    for doc in churned:
                        engine.remove(doc.doc_id)
                    for doc in churned:
                        engine.add(doc)
            except BaseException as exc:  # pragma: no cover
                failures.append(exc)
            finally:
                stop.set()

        threads = [threading.Thread(target=reader) for _ in range(4)]
        threads.append(threading.Thread(target=writer))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert not failures
        assert observed  # the race actually exercised readers
        torn = [r for r in set(observed) if r not in allowed]
        assert torn == [], (
            f"{len(torn)} distinct torn rankings observed "
            f"(readers saw an index state that never existed at rest)"
        )


class TestSystemSnapshotIsolation:
    """Queries racing ``add_workbook`` / ``remove_deal`` on the system.

    The churned workbook carries exactly one document, so the whole
    onboarding is a single index mutation and the quiesced-epoch set
    has exactly two members: with and without the extra engagement.
    """

    @pytest.fixture(scope="class")
    def world(self):
        corpus = CorpusGenerator(
            CorpusConfig(n_deals=4, docs_per_deal=14)
        ).generate()
        eil = EILSystem.build(corpus, shards=3)
        generator = DealGenerator(seed=999, taxonomy=corpus.taxonomy)
        deal = generator.generate(len(corpus.deals) + 1)[-1]
        full = WorkbookFactory(corpus.taxonomy, seed=999).build_workbook(
            deal, 12
        )
        workbook = EngagementWorkbook(
            deal.deal_id, name=full.name,
            documents=full.documents()[:1],
        )
        return corpus, eil, deal, workbook

    def test_keyword_rankings_match_a_quiesced_epoch(self, world):
        corpus, eil, deal, workbook = world

        def keyword_ranking():
            return tuple(
                (hit.doc_id, hit.score)
                for hit in eil.keyword_search("services", limit=10)
            )

        base = keyword_ranking()
        eil.add_workbook(workbook)
        with_extra = keyword_ranking()
        eil.remove_deal(deal.deal_id)
        assert keyword_ranking() == base  # churn is restorative
        allowed = {base, with_extra}

        stop = threading.Event()
        observed = []
        observed_lock = threading.Lock()
        failures = []
        form = scope_query("End User Services")
        known_deals = {d.deal_id for d in corpus.deals} | {deal.deal_id}

        def reader():
            local = []
            try:
                while not stop.is_set():
                    local.append(keyword_ranking())
                    results = eil.search(form, SALES)
                    assert set(results.deal_ids) <= known_deals
            except BaseException as exc:  # pragma: no cover
                failures.append(exc)
            with observed_lock:
                observed.extend(local)

        def churn():
            try:
                for _ in range(15):
                    eil.add_workbook(workbook)
                    eil.remove_deal(deal.deal_id)
            except BaseException as exc:  # pragma: no cover
                failures.append(exc)
            finally:
                stop.set()

        threads = [threading.Thread(target=reader) for _ in range(4)]
        threads.append(threading.Thread(target=churn))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert not failures
        assert observed
        torn = [r for r in set(observed) if r not in allowed]
        assert torn == [], (
            f"{len(torn)} torn keyword rankings under "
            f"add_workbook/remove_deal churn"
        )

    def test_synopsis_reads_survive_churn(self, world):
        corpus, eil, deal, workbook = world
        stop = threading.Event()
        failures = []

        def reader():
            try:
                while not stop.is_set():
                    for deal_id in eil.deal_ids():
                        if deal_id == deal.deal_id:
                            continue  # may vanish mid-iteration
                        synopsis = eil.synopsis(deal_id, SALES)
                        assert synopsis.deal_id == deal_id
            except BaseException as exc:  # pragma: no cover
                failures.append(exc)

        def churn():
            try:
                for _ in range(10):
                    eil.add_workbook(workbook)
                    eil.remove_deal(deal.deal_id)
            except BaseException as exc:  # pragma: no cover
                failures.append(exc)
            finally:
                stop.set()

        threads = [threading.Thread(target=reader) for _ in range(3)]
        threads.append(threading.Thread(target=churn))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures
