"""Unit tests for access control."""

import pytest

from repro.errors import AccessDeniedError
from repro.security import ANONYMOUS, AccessController, User


class TestUser:
    def test_roles_frozen(self):
        user = User("u", {"sales"})
        assert user.has_role("sales")
        assert not user.has_role("admin")
        assert isinstance(user.roles, frozenset)


class TestDocumentAccess:
    def test_default_open(self):
        controller = AccessController(default_open=True)
        assert controller.can_read_documents(User("u"), "any-repo")

    def test_default_closed(self):
        controller = AccessController(default_open=False)
        assert not controller.can_read_documents(User("u"), "any-repo")

    def test_restrict_then_grant_user(self):
        controller = AccessController()
        controller.restrict("r1")
        user = User("u")
        assert not controller.can_read_documents(user, "r1")
        controller.grant_user("r1", "u")
        assert controller.can_read_documents(user, "r1")

    def test_grant_role(self):
        controller = AccessController()
        controller.grant_role("r1", "delivery")
        assert controller.can_read_documents(User("u", {"delivery"}), "r1")
        assert not controller.can_read_documents(User("u", {"sales"}), "r1")

    def test_revoke_user(self):
        controller = AccessController()
        controller.grant_user("r1", "u")
        controller.revoke_user("r1", "u")
        assert not controller.can_read_documents(User("u"), "r1")

    def test_admin_bypasses(self):
        controller = AccessController(default_open=False)
        controller.restrict("r1")
        assert controller.can_read_documents(User("root", {"admin"}), "r1")

    def test_public_overrides_default_closed(self):
        controller = AccessController(default_open=False)
        controller.make_public("r1")
        assert controller.can_read_documents(User("u"), "r1")

    def test_restrict_after_public(self):
        controller = AccessController()
        controller.make_public("r1")
        controller.restrict("r1")
        assert not controller.can_read_documents(User("u"), "r1")

    def test_readable_repositories_filter(self):
        controller = AccessController(default_open=False)
        controller.grant_user("r1", "u")
        assert controller.readable_repositories(
            User("u"), ["r1", "r2"]
        ) == {"r1"}


class TestSynopsisAccess:
    def test_authenticated_users_allowed(self):
        controller = AccessController()
        assert controller.can_read_synopsis(User("u"))

    def test_anonymous_denied(self):
        controller = AccessController()
        assert not controller.can_read_synopsis(ANONYMOUS)
        with pytest.raises(AccessDeniedError):
            controller.require_synopsis_access(ANONYMOUS)
