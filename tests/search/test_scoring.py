"""Direct unit tests for the BM25 and TF-IDF scorers."""

import pytest

from repro.search import Analyzer, Bm25Scorer, IndexableDocument, TfidfScorer
from repro.search.inverted_index import InvertedIndex


@pytest.fixture
def index():
    idx = InvertedIndex(Analyzer(use_stemming=False, use_stopwords=False))
    idx.add(IndexableDocument("short", {"body": "wan wan lan"}))
    idx.add(IndexableDocument("long", {"body": "wan " + "filler " * 40}))
    idx.add(IndexableDocument("other", {"body": "lan mainframe storage"}))
    return idx


class TestBm25:
    def test_absent_term_scores_zero(self, index):
        assert Bm25Scorer().score(index, "ghost", "short") == 0.0

    def test_higher_tf_higher_score(self, index):
        scorer = Bm25Scorer()
        assert scorer.score(index, "wan", "short") > 0

    def test_length_normalization(self, index):
        # Same tf=... actually short has tf=2, but test length effect
        # with tf=1 docs: matching term in a shorter document scores
        # higher than in a longer one.
        scorer = Bm25Scorer()
        short_lan = scorer.score(index, "lan", "short")
        # "lan" appears once in both 'short' (3 tokens) and 'other'
        # (3 tokens)... use 'wan' in 'long' (41 tokens) vs 'lan' in
        # 'other' (3 tokens): compare same-df different-length instead.
        long_wan = scorer.score(index, "wan", "long")
        short_wan = scorer.score(index, "wan", "short")
        assert short_wan > long_wan
        assert short_lan > 0

    def test_rare_term_beats_common_at_same_tf(self, index):
        scorer = Bm25Scorer()
        # "mainframe" (df=1) vs "lan" (df=2), both tf=1 in 'other'.
        assert scorer.score(index, "mainframe", "other") > scorer.score(
            index, "lan", "other"
        )

    def test_precomputed_df_matches_computed(self, index):
        scorer = Bm25Scorer()
        computed = scorer.score(index, "wan", "short", "body")
        df = index.document_frequency("wan", "body")
        assert scorer.score(index, "wan", "short", "body", df=df) == (
            pytest.approx(computed)
        )

    def test_b_zero_disables_length_normalization(self, index):
        scorer = Bm25Scorer(b=0.0)
        assert scorer.score(index, "wan", "long") == pytest.approx(
            scorer.score(index, "wan", "long", None)
        )
        # With b=0 and equal tf, doc length is irrelevant.
        long_score = scorer.score(index, "wan", "long")
        # 'short' has tf=2 so compare via 'lan': tf=1 in short & other.
        assert scorer.score(index, "lan", "short") == pytest.approx(
            scorer.score(index, "lan", "other")
        )
        assert long_score > 0

    def test_empty_index(self):
        empty = InvertedIndex()
        assert Bm25Scorer().score(empty, "x", "y") == 0.0


class TestSparseFieldAverageLength:
    """Regression: ``average_length(field)`` must divide by the number
    of documents that *have* the field, not the total document count.
    The old denominator deflated avgdl for sparse fields, inflating the
    BM25 length penalty for every document that carries the field.
    """

    @pytest.fixture
    def sparse(self):
        idx = InvertedIndex(Analyzer(use_stemming=False, use_stopwords=False))
        idx.add(IndexableDocument("t1", {"title": "alpha", "body": "x"}))
        idx.add(IndexableDocument(
            "t2", {"title": "alpha beta gamma", "body": "y"}))
        idx.add(IndexableDocument("nb", {"body": "z"}))  # no title
        return idx

    def test_average_length_counts_only_docs_with_field(self, sparse):
        # Two docs have a title, totalling 1 + 3 = 4 tokens.  The seed
        # divided by all three docs (4/3 ~ 1.33); correct is 4/2 = 2.0.
        assert sparse.average_length("title") == 2.0
        assert sparse.field_document_count("title") == 2
        assert sparse.field_document_count("body") == 3

    def test_bm25_scores_with_corrected_avgdl(self, sparse):
        # Pinned against the closed form with avgdl=2.0, N=3, df=2:
        #   idf = ln(1 + (3 - 2 + 0.5) / (2 + 0.5))
        #   score = idf * tf*(k1+1) / (tf + k1*(1 - b + b*dl/avgdl))
        # The seed's deflated avgdl (4/3) gave 0.5235... for t1.
        scorer = Bm25Scorer()
        assert scorer.score(sparse, "alpha", "t1", "title") == pytest.approx(
            0.5908617053374963
        )
        assert scorer.score(sparse, "alpha", "t2", "title") == pytest.approx(
            0.3901916922040070
        )

    def test_missing_field_average_is_zero(self, sparse):
        assert sparse.average_length("ghost") == 0.0


class TestTfidf:
    def test_absent_term_scores_zero(self, index):
        assert TfidfScorer().score(index, "ghost", "short") == 0.0

    def test_tf_monotone(self, index):
        scorer = TfidfScorer()
        assert scorer.score(index, "wan", "short") > scorer.score(
            index, "wan", "long"
        )

    def test_idf_component(self, index):
        scorer = TfidfScorer()
        assert scorer.score(index, "mainframe", "other") > scorer.score(
            index, "lan", "other"
        )

    def test_precomputed_df_consistent(self, index):
        scorer = TfidfScorer()
        assert scorer.score(index, "lan", "other", None, df=2) == (
            pytest.approx(scorer.score(index, "lan", "other"))
        )
