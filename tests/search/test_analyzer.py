"""Unit tests for the analysis pipeline."""

from repro.search import Analyzer


class TestAnalyzer:
    def test_stems_and_stops(self):
        analyzer = Analyzer()
        terms = [t.term for t in analyzer.analyze("the services of a deal")]
        assert terms == ["servic", "deal"]

    def test_positions_account_for_stopwords(self):
        analyzer = Analyzer()
        terms = analyzer.analyze("the services of the deal")
        # "services" is token 1, "deal" is token 4.
        assert [(t.term, t.position) for t in terms] == [
            ("servic", 1),
            ("deal", 4),
        ]

    def test_offsets_point_into_source(self):
        analyzer = Analyzer()
        text = "Storage Management Services"
        for term in analyzer.analyze(text):
            assert text[term.start:term.end].lower().startswith(term.term[:3])

    def test_no_stemming_option(self):
        analyzer = Analyzer(use_stemming=False)
        terms = [t.term for t in analyzer.analyze("services")]
        assert terms == ["services"]

    def test_no_stopwords_option(self):
        analyzer = Analyzer(use_stopwords=False)
        terms = [t.term for t in analyzer.analyze("the deal")]
        assert terms[0] == "the"

    def test_it_is_not_a_stopword(self):
        # "IT services" must keep "it" — it's a domain term here.
        analyzer = Analyzer()
        terms = [t.term for t in analyzer.analyze("IT services")]
        assert "it" in terms

    def test_query_terms_helper(self):
        analyzer = Analyzer()
        assert analyzer.analyze_query_terms("End User Services") == [
            "end",
            "user",
            "servic",
        ]

    def test_empty_text(self):
        assert Analyzer().analyze("") == []
