"""Ranking-equivalence suite: planned/pruned execution vs the reference.

The execution engine promises that every optimization —
bulk scoring, df-ordered AND, filter pushdown, heap top-k, MaxScore
pruning — is invisible in the results: same documents, bit-identical
scores, same tie-breaks as ``ExecutionOptions.exhaustive()``.  This
suite drives both modes over seeded random corpora and a query zoo
covering term/phrase/AND/OR/NOT, field restrictions, field boosts,
id-set and predicate doc filters, and post-``remove`` epochs, and
asserts exact equality.
"""

import random

import pytest

from repro.obs import use_registry
from repro.search import (
    Bm25Scorer,
    ExecutionOptions,
    IndexableDocument,
    SearchEngine,
    TfidfScorer,
    parse_query,
)

# Realistic-ish vocabulary with skewed frequencies so MaxScore has
# common terms to prune and rare terms to keep: the first words appear
# in most documents, the last in only a few.
COMMON = ["services", "deal", "client", "team", "review"]
MID = ["network", "storage", "finance", "migration", "pricing",
       "contract", "server", "delivery"]
RARE = ["audit", "escrow", "latency", "turbine", "quarantine",
        "helpdesk", "mainframe", "benchmark"]
VOCAB = COMMON * 8 + MID * 3 + RARE

QUERIES = [
    "finance",
    "financing",                       # stems to the same as "finance"
    "network services",                # implicit AND
    "network OR storage OR audit",
    "services OR deal OR client OR review OR escrow OR audit",
    '"storage management"',
    '"network migration" OR finance',
    "finance -audit",
    "-services",                       # pure negation
    "title:network OR body:finance",
    "(finance OR pricing) (network OR storage) -turbine",
    "deal AND NOT escrow OR audit".replace(" AND NOT ", " -"),
]

LIMITS = [None, 1, 3, 10]

VARIANTS = [
    ExecutionOptions(),  # everything on
    ExecutionOptions(bulk_scoring=False),
    ExecutionOptions(df_ordering=False),
    ExecutionOptions(filter_pushdown=False),
    ExecutionOptions(maxscore=False),
    ExecutionOptions(top_k_heap=False),
    ExecutionOptions(bulk_scoring=True, df_ordering=False,
                     filter_pushdown=False, maxscore=False,
                     top_k_heap=False),
    ExecutionOptions(bulk_scoring=False, df_ordering=False,
                     filter_pushdown=False, maxscore=True,
                     top_k_heap=True),
]


def make_corpus(seed, docs=80, deals=8):
    rng = random.Random(seed)
    corpus = []
    for i in range(docs):
        title = " ".join(rng.choices(VOCAB, k=rng.randint(2, 5)))
        body_words = rng.choices(VOCAB, k=rng.randint(10, 40))
        if rng.random() < 0.3:
            body_words[rng.randrange(len(body_words) - 1):][:2] = [
                "storage", "management"
            ]
        if rng.random() < 0.2:
            body_words.extend(["network", "migration"])
        corpus.append(
            IndexableDocument(
                f"doc{i:03d}",
                {"title": title, "body": " ".join(body_words)},
                {"deal_id": f"deal{i % deals}"},
            )
        )
    return corpus


def make_engine(corpus, **kwargs):
    kwargs.setdefault("cache_size", 0)
    engine = SearchEngine(**kwargs)
    engine.add_all(corpus)
    return engine


def ranking(engine, query, limit, doc_filter, options):
    hits = engine.search(
        query, limit=limit, doc_filter=doc_filter, options=options
    )
    return [(hit.doc_id, hit.score) for hit in hits]


def assert_equivalent(engine, query, limit=None, doc_filter=None,
                      variants=VARIANTS):
    parsed = parse_query(query) if isinstance(query, str) else query
    reference = ranking(
        engine, parsed, limit, doc_filter, ExecutionOptions.exhaustive()
    )
    for options in variants:
        planned = ranking(engine, parsed, limit, doc_filter, options)
        assert planned == reference, (
            f"ranking diverged for query={query!r} limit={limit} "
            f"options={options}"
        )
    if limit is not None:
        unlimited = ranking(
            engine, parsed, None, doc_filter, ExecutionOptions()
        )
        assert reference == unlimited[:limit], (
            f"top-{limit} is not the head of the full ranking "
            f"for query={query!r}"
        )


@pytest.fixture(scope="module")
def corpus():
    return make_corpus(seed=2008)


@pytest.fixture(scope="module")
def engine(corpus):
    return make_engine(corpus)


@pytest.mark.parametrize("query", QUERIES)
@pytest.mark.parametrize("limit", LIMITS)
def test_query_zoo_equivalence(engine, query, limit):
    assert_equivalent(engine, query, limit)


@pytest.mark.parametrize("limit", [None, 5])
def test_equivalence_with_field_boosts(corpus, limit):
    engine = make_engine(corpus, field_boosts={"title": 2.5, "body": 0.5})
    for query in QUERIES:
        assert_equivalent(engine, query, limit)


@pytest.mark.parametrize("limit", [None, 5])
def test_equivalence_with_tfidf_scorer(corpus, limit):
    engine = make_engine(corpus, scorer=TfidfScorer())
    for query in QUERIES:
        assert_equivalent(engine, query, limit)


@pytest.mark.parametrize("limit", [None, 4])
def test_equivalence_with_id_set_filter(engine, corpus, limit):
    rng = random.Random(99)
    scope = frozenset(
        doc.doc_id for doc in corpus if rng.random() < 0.4
    )
    for query in QUERIES:
        assert_equivalent(engine, query, limit, doc_filter=scope)
    assert_equivalent(engine, "finance OR audit", limit,
                      doc_filter=frozenset())


@pytest.mark.parametrize("limit", [None, 4])
def test_equivalence_with_predicate_filter(engine, limit):
    def predicate(document):
        return document.metadata.get("deal_id") in {"deal1", "deal3"}

    for query in QUERIES:
        assert_equivalent(engine, query, limit, doc_filter=predicate)


def test_equivalence_after_removals(corpus):
    engine = make_engine(corpus)
    rng = random.Random(7)
    removed = [d.doc_id for d in corpus if rng.random() < 0.3]
    for doc_id in removed:
        engine.remove(doc_id)
    for query in QUERIES:
        for limit in (None, 5):
            assert_equivalent(engine, query, limit)
    # Re-add a few with new text; compiled postings must follow.
    engine.add(
        IndexableDocument(
            removed[0],
            {"title": "audit escrow turbine",
             "body": "finance network storage audit audit"},
            {"deal_id": "deal0"},
        )
    )
    for query in QUERIES:
        assert_equivalent(engine, query, 5)


def test_equivalence_property_random_corpora_and_queries():
    """Property-style sweep: fresh corpus + random OR/AND queries."""
    for seed in range(8):
        rng = random.Random(1000 + seed)
        engine = make_engine(make_corpus(seed=seed, docs=50))
        for _ in range(6):
            words = rng.sample(COMMON + MID + RARE, rng.randint(2, 6))
            joiner = rng.choice([" OR ", " "])
            query = joiner.join(words)
            if rng.random() < 0.3:
                query += f" -{rng.choice(MID)}"
            assert_equivalent(
                engine, query, limit=rng.choice([None, 1, 3, 7]),
                variants=[ExecutionOptions()],
            )


def test_tie_breaks_by_doc_id_match_reference():
    engine = SearchEngine(cache_size=0)
    # Identical documents => identical scores => ties broken by doc id.
    for doc_id in ["z9", "a1", "m5", "b2"]:
        engine.add(
            IndexableDocument(
                doc_id, {"body": "finance network finance"}, {}
            )
        )
    assert_equivalent(engine, "finance OR network", limit=2)
    hits = engine.search("finance OR network", limit=2)
    assert [h.doc_id for h in hits] == ["a1", "b2"]


def test_maxscore_touches_strictly_fewer_postings(engine):
    """Acceptance criterion: pruning does strictly less posting work."""
    query = parse_query(
        "escrow OR turbine OR services OR deal OR client OR review"
    )

    def touched(options):
        with use_registry() as registry:
            engine.search(query, limit=3, options=options)
            return registry.counter("engine.postings_touched").value

    exhaustive = touched(ExecutionOptions.exhaustive())
    pruned = touched(ExecutionOptions())
    assert pruned < exhaustive
    with use_registry() as registry:
        engine.search(query, limit=3)
        assert registry.counter("engine.maxscore.clauses_pruned").value > 0


def test_exhaustive_options_all_disabled():
    options = ExecutionOptions.exhaustive()
    assert not any(
        (options.bulk_scoring, options.df_ordering,
         options.filter_pushdown, options.maxscore, options.top_k_heap)
    )


# -- segment-backed layouts ---------------------------------------------------
#
# The persistent store promises the same invisibility as the execution
# optimizations: whatever LSM shape the index is in — pure memtable,
# freshly flushed, many tiered segments, tombstoned, compacted, or
# reloaded from disk — rankings are bit-identical to the in-memory
# engine over the same live documents.

SEGMENT_LAYOUTS = ["memtable", "flushed", "tiered", "tombstoned",
                   "compacted"]


def make_segmented_engine(corpus, layout, removed=(), **kwargs):
    from repro.storage import SegmentBackedIndex

    kwargs.setdefault("cache_size", 0)
    memtable_limit = 4096 if layout == "memtable" else 16
    index = SegmentBackedIndex(memtable_limit=memtable_limit,
                               merge_fanout=3)
    engine = SearchEngine(index=index, **kwargs)
    engine.add_all(corpus)
    if layout == "flushed":
        index.flush()
    for doc_id in removed:
        engine.remove(doc_id)
    if layout == "compacted":
        index.compact()
    return engine


def segment_reference_engine(corpus, removed=(), **kwargs):
    engine = make_engine(corpus, **kwargs)
    for doc_id in removed:
        engine.remove(doc_id)
    return engine


@pytest.mark.parametrize("layout", SEGMENT_LAYOUTS)
def test_segment_layouts_match_in_memory_rankings(corpus, layout):
    removed = ()
    if layout in ("tombstoned", "compacted"):
        rng = random.Random(17)
        removed = tuple(
            doc.doc_id for doc in corpus if rng.random() < 0.3
        )
    reference = segment_reference_engine(corpus, removed)
    segmented = make_segmented_engine(corpus, layout, removed)
    if layout == "tiered":
        assert len(segmented.index.segments) > 1
    for query in QUERIES:
        parsed = parse_query(query)
        for limit in (None, 1, 5):
            for options in (ExecutionOptions(),
                            ExecutionOptions.exhaustive()):
                assert ranking(segmented, parsed, limit, None, options) == (
                    ranking(reference, parsed, limit, None, options)
                ), f"layout={layout} query={query!r} limit={limit}"


def test_segment_layout_matches_after_readds(corpus):
    rng = random.Random(23)
    removed = [doc.doc_id for doc in corpus if rng.random() < 0.4]
    reference = segment_reference_engine(corpus, removed)
    segmented = make_segmented_engine(corpus, "tiered", removed)
    for doc_id in removed[:10]:
        replacement = IndexableDocument(
            doc_id,
            {"title": "audit escrow", "body": "finance network storage"},
            {"deal_id": "deal0"},
        )
        reference.add(replacement)
        segmented.add(replacement)
    for query in QUERIES:
        for limit in (None, 4):
            assert_equivalent(segmented, query, limit,
                              variants=[ExecutionOptions()])
            parsed = parse_query(query)
            assert ranking(
                segmented, parsed, limit, None, ExecutionOptions()
            ) == ranking(
                reference, parsed, limit, None, ExecutionOptions()
            )


def test_cold_started_engine_matches_in_memory_rankings(corpus, tmp_path):
    reference = segment_reference_engine(corpus)
    segmented = make_segmented_engine(corpus, "tiered")
    segmented.save_index(str(tmp_path))
    cold = SearchEngine(cache_size=0)
    cold.load_index(str(tmp_path))
    for query in QUERIES:
        parsed = parse_query(query)
        for limit in (None, 3):
            assert ranking(
                cold, parsed, limit, None, ExecutionOptions()
            ) == ranking(
                reference, parsed, limit, None, ExecutionOptions()
            ), f"query={query!r} limit={limit}"


@pytest.mark.parametrize("layout", ["tiered", "tombstoned"])
def test_segment_layouts_full_variant_zoo(corpus, layout):
    """Every execution variant stays equivalent over segment layouts."""
    removed = ("doc004", "doc017", "doc033") if layout == "tombstoned" else ()
    segmented = make_segmented_engine(corpus, layout, removed)
    for query in QUERIES:
        assert_equivalent(segmented, query, limit=5)
