"""Property tests: query semantics agree with brute-force evaluation.

Random small documents and random boolean query trees; the engine's
matched set must equal a direct evaluation of the boolean semantics
over the documents' term sets.  Stemming/stopping are disabled so the
brute force stays trivially correct.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.search import (
    Analyzer,
    AndQuery,
    IndexableDocument,
    NotQuery,
    OrQuery,
    SearchEngine,
    TermQuery,
)

WORDS = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta"]

documents = st.lists(
    st.lists(st.sampled_from(WORDS), min_size=1, max_size=8),
    min_size=1,
    max_size=10,
)


def query_trees(max_depth=3):
    leaves = st.builds(TermQuery, st.sampled_from(WORDS))
    return st.recursive(
        leaves,
        lambda children: st.one_of(
            st.builds(
                lambda a, b: AndQuery((a, b)), children, children
            ),
            st.builds(
                lambda a, b: OrQuery((a, b)), children, children
            ),
            st.builds(NotQuery, children),
        ),
        max_leaves=6,
    )


def brute_force(query, doc_words, all_ids):
    if isinstance(query, TermQuery):
        return {i for i, words in doc_words.items()
                if query.text in words}
    if isinstance(query, AndQuery):
        positives = [c for c in query.clauses
                     if not isinstance(c, NotQuery)]
        negatives = [c.clause for c in query.clauses
                     if isinstance(c, NotQuery)]
        if positives:
            matched = set(all_ids)
            for clause in positives:
                matched &= brute_force(clause, doc_words, all_ids)
        else:
            matched = set(all_ids)
        for clause in negatives:
            matched -= brute_force(clause, doc_words, all_ids)
        return matched
    if isinstance(query, OrQuery):
        matched = set()
        for clause in query.clauses:
            matched |= brute_force(clause, doc_words, all_ids)
        return matched
    if isinstance(query, NotQuery):
        return set(all_ids) - brute_force(query.clause, doc_words,
                                          all_ids)
    raise AssertionError(query)


def build_engine(docs):
    engine = SearchEngine(
        analyzer=Analyzer(use_stemming=False, use_stopwords=False)
    )
    doc_words = {}
    for i, words in enumerate(docs):
        doc_id = f"d{i}"
        engine.add(IndexableDocument(doc_id, {"body": " ".join(words)}))
        doc_words[doc_id] = set(words)
    return engine, doc_words


class TestBooleanSemantics:
    @given(documents, query_trees())
    @settings(max_examples=80)
    def test_matched_set_equals_brute_force(self, docs, query):
        engine, doc_words = build_engine(docs)
        expected = brute_force(query, doc_words, set(doc_words))
        matched = {hit.doc_id for hit in engine.search(query)}
        assert matched == expected

    @given(documents, query_trees())
    @settings(max_examples=40)
    def test_count_consistent_with_search(self, docs, query):
        engine, _ = build_engine(docs)
        assert engine.count(query) == len(engine.search(query))

    @given(documents, st.sampled_from(WORDS))
    @settings(max_examples=40)
    def test_scores_positive_for_term_matches(self, docs, word):
        engine, doc_words = build_engine(docs)
        for hit in engine.search(TermQuery(word)):
            assert hit.score > 0
            assert word in doc_words[hit.doc_id]
