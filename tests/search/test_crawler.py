"""Unit tests for the data-acquisition crawler."""

from repro.search import Crawler, IndexableDocument, SearchEngine


class ListSource:
    def __init__(self, documents):
        self._documents = documents

    def iter_documents(self):
        return iter(self._documents)


class TestCrawler:
    def test_crawl_indexes_everything(self):
        engine = SearchEngine()
        source = ListSource(
            [
                IndexableDocument("a", {"body": "alpha"}),
                IndexableDocument("b", {"body": "beta"}),
            ]
        )
        report = Crawler(engine).crawl(source)
        assert report.indexed == 2
        assert report.skipped == 0
        assert len(engine) == 2

    def test_duplicates_skipped_not_fatal(self):
        engine = SearchEngine()
        doc = IndexableDocument("a", {"body": "alpha"})
        report = Crawler(engine).crawl(ListSource([doc, doc]))
        assert report.indexed == 1
        assert report.skipped == 1
        assert "already indexed" in report.errors[0]

    def test_crawl_all_combines_reports(self):
        engine = SearchEngine()
        crawler = Crawler(engine)
        report = crawler.crawl_all(
            [
                ListSource([IndexableDocument("a", {"body": "x"})]),
                ListSource([IndexableDocument("b", {"body": "y"})]),
            ]
        )
        assert report.indexed == 2
        assert engine.count("x") == 1
