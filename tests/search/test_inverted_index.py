"""Unit and property tests for the positional inverted index."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SearchError
from repro.search import Analyzer, IndexableDocument, InvertedIndex


def make_index():
    index = InvertedIndex(Analyzer(use_stemming=False, use_stopwords=False))
    index.add(IndexableDocument("a", {"title": "end user services",
                                      "body": "customer services center"}))
    index.add(IndexableDocument("b", {"title": "network services",
                                      "body": "end of the line"}))
    return index


class TestBasics:
    def test_matching_docs_across_fields(self):
        index = make_index()
        assert index.matching_docs("services") == {"a", "b"}
        assert index.matching_docs("services", "body") == {"a"}

    def test_document_roundtrip(self):
        index = make_index()
        assert index.document("a").fields["title"] == "end user services"
        assert index.has_document("a")
        assert not index.has_document("zz")

    def test_duplicate_add_rejected(self):
        index = make_index()
        with pytest.raises(SearchError):
            index.add(IndexableDocument("a", {"x": "y"}))

    def test_remove_cleans_postings(self):
        index = make_index()
        index.remove("a")
        assert index.matching_docs("customer") == set()
        assert index.matching_docs("services") == {"b"}
        assert len(index) == 1

    def test_remove_missing(self):
        with pytest.raises(SearchError):
            make_index().remove("zz")

    def test_fields_listing(self):
        assert make_index().fields == ["body", "title"]

    def test_vocabulary(self):
        index = make_index()
        assert "services" in index.vocabulary()
        assert "customer" in index.vocabulary("body")
        assert "customer" not in index.vocabulary("title")


class TestPhrase:
    def test_phrase_within_field(self):
        index = make_index()
        assert index.phrase_docs(["end", "user"], "title") == {"a"}
        assert index.phrase_docs(["user", "services"], "title") == {"a"}
        assert index.phrase_docs(["end", "services"], "title") == set()

    def test_phrase_any_field(self):
        index = make_index()
        assert index.phrase_docs(["customer", "services", "center"]) == {"a"}

    def test_phrase_does_not_cross_fields(self):
        # "services" ends the title of b? No - title is "network services",
        # body starts "end of" - "services end" must not match across.
        index = make_index()
        assert index.phrase_docs(["services", "end"]) == set()

    def test_empty_phrase(self):
        assert make_index().phrase_docs([]) == set()

    def test_single_term_phrase(self):
        assert make_index().phrase_docs(["network"]) == {"b"}

    def test_repeated_word_phrase(self):
        index = InvertedIndex(Analyzer(use_stemming=False))
        index.add(IndexableDocument("x", {"body": "deal deal closed"}))
        assert index.phrase_docs(["deal", "deal"], "body") == {"x"}
        assert index.phrase_docs(["deal", "closed"], "body") == {"x"}


class TestStatistics:
    def test_frequencies(self):
        index = make_index()
        assert index.document_frequency("services") == 2
        assert index.term_frequency("services", "a") == 2  # title + body
        assert index.term_frequency("services", "a", "body") == 1

    def test_lengths(self):
        index = make_index()
        assert index.field_length("title", "a") == 3
        assert index.total_length("a") == 6
        assert index.average_length("title") == 2.5

    def test_empty_index_statistics(self):
        index = InvertedIndex()
        assert index.average_length() == 0.0
        assert index.document_frequency("x") == 0


class TestRemoveBookkeeping:
    """Regression: ``remove`` must restore all statistics exactly and
    touch only the removed document's own terms (the seed scanned the
    whole vocabulary).
    """

    def _stats(self, index):
        return {
            "len": len(index),
            "fields": index.fields,
            "vocab": {f: index.vocabulary(f) for f in index.fields},
            "avg": {f: index.average_length(f) for f in index.fields},
            "field_docs": {
                f: index.field_document_count(f) for f in index.fields
            },
        }

    def test_add_remove_restores_exact_statistics(self):
        index = make_index()
        baseline = self._stats(index)
        index.add(IndexableDocument(
            "extra",
            {"title": "alpha services", "body": "beta beta gamma",
             "notes": "only this doc has notes"},
        ))
        index.remove("extra")
        assert self._stats(index) == baseline

    def test_remove_drops_field_owned_by_single_doc(self):
        index = make_index()
        index.add(IndexableDocument("solo", {"appendix": "alpha beta"}))
        assert "appendix" in index.fields
        index.remove("solo")
        assert "appendix" not in index.fields
        assert index.average_length("appendix") == 0.0

    def test_remove_touches_only_own_terms(self):
        from repro import obs

        index = make_index()
        index.add(IndexableDocument("extra", {"body": "alpha beta alpha"}))
        with obs.use_registry() as registry:
            index.remove("extra")
            # Two distinct (field, term) postings — not a scan over the
            # whole vocabulary (which holds many more terms).
            histogram = registry.histograms["index.remove_terms_touched"]
            assert histogram.count == 1
            assert histogram.max == 2
            assert histogram.max < len(index.vocabulary())


class TestProperties:
    words = st.lists(
        st.sampled_from(["alpha", "beta", "gamma", "delta", "epsilon"]),
        min_size=1, max_size=12,
    )

    @given(st.lists(words, min_size=1, max_size=8))
    @settings(max_examples=40)
    def test_matching_docs_agrees_with_membership(self, docs):
        index = InvertedIndex(Analyzer(use_stemming=False))
        for i, word_list in enumerate(docs):
            index.add(IndexableDocument(f"d{i}", {"body": " ".join(word_list)}))
        for term in ("alpha", "gamma"):
            expected = {f"d{i}" for i, ws in enumerate(docs) if term in ws}
            assert index.matching_docs(term) == expected

    @given(st.lists(words, min_size=1, max_size=8))
    @settings(max_examples=40)
    def test_phrase_agrees_with_substring(self, docs):
        index = InvertedIndex(Analyzer(use_stemming=False))
        for i, word_list in enumerate(docs):
            index.add(IndexableDocument(f"d{i}", {"body": " ".join(word_list)}))
        phrase = ["alpha", "beta"]
        expected = {
            f"d{i}"
            for i, ws in enumerate(docs)
            if any(ws[j:j + 2] == phrase for j in range(len(ws)))
        }
        assert index.phrase_docs(phrase, "body") == expected

    @given(st.lists(words, min_size=2, max_size=8))
    @settings(max_examples=40)
    def test_add_remove_is_identity(self, docs):
        index = InvertedIndex(Analyzer(use_stemming=False))
        for i, word_list in enumerate(docs):
            index.add(IndexableDocument(f"d{i}", {"body": " ".join(word_list)}))
        baseline = {
            term: index.matching_docs(term) for term in index.vocabulary()
        }
        index.add(IndexableDocument("extra", {"body": "alpha beta gamma"}))
        index.remove("extra")
        assert {
            term: index.matching_docs(term) for term in index.vocabulary()
        } == baseline
        assert len(index) == len(docs)
