"""Unit tests for the top-k execution engine's building blocks.

Covers the compiled posting arrays (lazy compile, incremental
maintenance, invalidation on remove), the metadata value index, the
bulk scorer API and its upper bounds, and the engine-level satellites:
limit-folding result cache, mutation-safe cached hits,
count-from-cache, and analyzed-token snippet anchoring.
"""

import dataclasses

import pytest

from repro.obs import use_registry
from repro.search import (
    Analyzer,
    Bm25Scorer,
    ExecutionOptions,
    IndexableDocument,
    InvertedIndex,
    SearchEngine,
    TfidfScorer,
)


def doc(doc_id, body, title=None, **metadata):
    fields = {"body": body}
    if title is not None:
        fields["title"] = title
    return IndexableDocument(doc_id, fields, metadata)


@pytest.fixture
def index():
    # No stemming: test terms below are index terms verbatim.
    ix = InvertedIndex(Analyzer(use_stemming=False))
    ix.add(doc("a", "wan wan lan", deal_id="d1"))
    ix.add(doc("b", "wan storage network", deal_id="d1"))
    ix.add(doc("c", "storage storage storage", deal_id="d2"))
    return ix


class TestCompiledPostings:
    def test_arrays_carry_tf_and_length(self, index):
        postings = index.term_postings("wan", "body")
        by_doc = dict(zip(postings.doc_ids, zip(postings.tfs,
                                                postings.lengths)))
        assert by_doc == {"a": (2, 3), "b": (1, 3)}
        assert postings.max_tf == 2
        assert len(postings) == 2

    def test_absent_term_compiles_to_none(self, index):
        assert index.term_postings("ghost", "body") is None
        assert index.term_postings("wan", "ghost_field") is None

    def test_compile_is_lazy_and_cached(self, index):
        with use_registry() as registry:
            first = index.term_postings("storage", "body")
            again = index.term_postings("storage", "body")
            assert (
                registry.counter("index.postings_compiled").value == 1
            )
        assert again is first

    def test_add_appends_incrementally(self, index):
        compiled = index.term_postings("storage", "body")
        index.add(doc("d", "storage wan", deal_id="d2"))
        assert compiled.doc_ids[-1] == "d"
        assert compiled.tfs[-1] == 1
        assert index.term_postings("storage", "body") is compiled

    def test_remove_invalidates_only_touched_terms(self, index):
        storage = index.term_postings("storage", "body")
        lan = index.term_postings("lan", "body")
        index.remove("c")  # contains storage, not lan
        rebuilt = index.term_postings("storage", "body")
        assert rebuilt is not storage
        assert rebuilt.doc_ids == ["b"]
        assert index.term_postings("lan", "body") is lan

    def test_max_tf_does_not_force_compilation(self, index):
        with use_registry() as registry:
            assert index.max_tf("wan", "body") is None
            assert (
                registry.counter("index.postings_compiled").value == 0
            )
        index.term_postings("wan", "body")
        assert index.max_tf("wan", "body") == 2

    def test_df_matches_document_frequency(self, index):
        for term in ("wan", "storage", "lan", "ghost"):
            assert index.df(term, "body") == (
                index.document_frequency(term, "body")
            )

    def test_epoch_bumps_on_mutation(self, index):
        before = index.epoch
        index.add(doc("d", "wan"))
        index.remove("d")
        assert index.epoch == before + 2


class TestMetadataValueIndex:
    def test_docs_with_metadata(self, index):
        assert index.docs_with_metadata("deal_id", {"d1"}) == {"a", "b"}
        assert index.docs_with_metadata("deal_id", {"d1", "d2"}) == {
            "a", "b", "c"
        }
        assert index.docs_with_metadata("deal_id", {"ghost"}) == set()
        assert index.docs_with_metadata("ghost_key", {"d1"}) == set()

    def test_remove_cleans_value_index(self, index):
        index.remove("c")
        assert index.docs_with_metadata("deal_id", {"d2"}) == set()

    def test_unhashable_values_are_skipped(self):
        ix = InvertedIndex()
        ix.add(doc("a", "wan", tags=["x", "y"], deal_id="d1"))
        assert ix.docs_with_metadata("deal_id", {"d1"}) == {"a"}
        assert ix.docs_with_metadata("tags", {"x"}) == set()
        # An unhashable *probe* value must not raise either.
        assert ix.docs_with_metadata("deal_id", [["boom"]]) == set()


@pytest.mark.parametrize("scorer", [Bm25Scorer(), TfidfScorer()])
class TestBulkScorer:
    def test_score_postings_matches_per_doc(self, index, scorer):
        for term in ("wan", "storage", "lan"):
            compiled = index.term_postings(term, "body")
            df = len(compiled)
            bulk = scorer.score_postings(
                index, term, "body", compiled.tfs, compiled.lengths,
                df=df,
            )
            per_doc = [
                scorer.score(index, term, doc_id, "body", df=df)
                for doc_id in compiled.doc_ids
            ]
            assert bulk == per_doc  # bit-identical, not approx

    def test_upper_bound_dominates_scores(self, index, scorer):
        for term in ("wan", "storage", "lan"):
            compiled = index.term_postings(term, "body")
            df = len(compiled)
            for max_tf in (None, compiled.max_tf):
                bound = scorer.upper_bound(
                    index, term, "body", df, max_tf=max_tf
                )
                for doc_id in compiled.doc_ids:
                    assert bound >= scorer.score(
                        index, term, doc_id, "body", df=df
                    )

    def test_zero_df_bounds_and_bulk(self, index, scorer):
        assert scorer.upper_bound(index, "ghost", "body", 0) == 0.0
        assert scorer.score_postings(
            index, "ghost", "body", [], [], df=0
        ) == []


class TestEngineCacheSatellites:
    @pytest.fixture
    def engine(self):
        e = SearchEngine(cache_size=32)
        e.add_all(
            [
                doc("a", "wan storage network services"),
                doc("b", "wan wan storage"),
                doc("c", "network network services"),
                doc("d", "storage services wan network"),
            ]
        )
        return e

    def test_limits_share_one_cached_ranking(self, engine):
        with use_registry() as registry:
            full = engine.search("wan OR network")
            top2 = engine.search("wan OR network", limit=2)
            top1 = engine.search("wan OR network", limit=1)
            assert registry.counter("engine.cache.misses").value == 1
            assert registry.counter("engine.cache.hits").value == 2
        assert [h.doc_id for h in top2] == [h.doc_id for h in full][:2]
        assert [h.doc_id for h in top1] == [h.doc_id for h in full][:1]

    def test_partial_ranking_serves_smaller_limits_only(self, engine):
        scored = "engine.terms_scored"
        with use_registry() as registry:
            engine.search("wan OR network", limit=2)
            base = registry.counter(scored).value
            engine.search("wan OR network", limit=1)  # covered: sliced
            assert registry.counter(scored).value == base
            engine.search("wan OR network", limit=3)  # not covered
            assert registry.counter(scored).value > base
            after = registry.counter(scored).value
            engine.search("wan OR network", limit=3)  # now covered
            assert registry.counter(scored).value == after

    def test_limited_result_smaller_than_limit_is_complete(self, engine):
        with use_registry() as registry:
            hits = engine.search("wan OR network", limit=50)
            assert len(hits) < 50
            engine.search("wan OR network")  # unlimited, still covered
            assert registry.counter("engine.cache.hits").value == 1

    def test_mutating_returned_list_does_not_poison_cache(self, engine):
        first = engine.search("wan OR network", limit=3)
        expected = [(h.doc_id, h.score) for h in first]
        first.clear()  # caller abuses the returned list
        second = engine.search("wan OR network", limit=3)
        assert [(h.doc_id, h.score) for h in second] == expected
        with pytest.raises(dataclasses.FrozenInstanceError):
            second[0].score = 999.0  # hits themselves are immutable

    def test_count_answered_from_cached_search(self, engine):
        with use_registry() as registry:
            hits = engine.search("wan OR network")
            assert engine.count("wan OR network") == len(hits)
            assert (
                registry.counter("engine.counts_from_cache").value == 1
            )

    def test_count_ignores_partial_cached_ranking(self, engine):
        with use_registry() as registry:
            engine.search("wan OR network", limit=1)
            assert engine.count("wan OR network") == 4
            assert (
                registry.counter("engine.counts_from_cache").value == 0
            )

    def test_count_never_scores(self, engine):
        with use_registry() as registry:
            assert engine.count("wan OR network") == 4
            assert registry.counter("engine.terms_scored").value == 0

    def test_options_are_cached_separately(self, engine):
        with use_registry() as registry:
            engine.search("wan OR network", limit=2)
            engine.search(
                "wan OR network", limit=2,
                options=ExecutionOptions.exhaustive(),
            )
            assert registry.counter("engine.cache.misses").value == 2


class TestStemmedSnippets:
    def test_snippet_anchors_on_stemmed_variant(self):
        engine = SearchEngine()
        filler = "one two three four five six seven eight nine ten " * 8
        engine.add(
            doc("a", filler + "the deal was financed by the client")
        )
        hits = engine.search("financing")
        assert len(hits) == 1
        assert "financed" in hits[0].snippet

    def test_exact_surface_still_preferred(self):
        engine = SearchEngine()
        engine.add(
            doc("a", "financed early, but financing appears later here")
        )
        snippet = engine.search("financing")[0].snippet
        assert "financing" in snippet
