"""Unit tests for the keyword query parser."""

import pytest

from repro.errors import QuerySyntaxError
from repro.search import (
    AndQuery,
    NotQuery,
    OrQuery,
    PhraseQuery,
    TermQuery,
    parse_query,
)


class TestParsing:
    def test_single_term(self):
        assert parse_query("services") == TermQuery("services")

    def test_implicit_and(self):
        query = parse_query("end user services")
        assert isinstance(query, AndQuery)
        assert len(query.clauses) == 3

    def test_explicit_and_is_noop(self):
        assert parse_query("a AND b") == parse_query("a b")

    def test_phrase(self):
        assert parse_query('"end user services"') == PhraseQuery(
            "end user services"
        )

    def test_or(self):
        query = parse_query('csc OR "customer services center"')
        assert isinstance(query, OrQuery)
        assert query.clauses[0] == TermQuery("csc")
        assert query.clauses[1] == PhraseQuery("customer services center")

    def test_or_case_insensitive_keyword(self):
        assert isinstance(parse_query("a or b"), OrQuery)

    def test_and_binds_tighter_than_or(self):
        query = parse_query("a b OR c")
        assert isinstance(query, OrQuery)
        assert isinstance(query.clauses[0], AndQuery)

    def test_minus_negation(self):
        query = parse_query("services -template")
        assert isinstance(query, AndQuery)
        assert query.clauses[1] == NotQuery(TermQuery("template"))

    def test_not_keyword(self):
        query = parse_query("services NOT template")
        assert query.clauses[1] == NotQuery(TermQuery("template"))

    def test_field_term(self):
        assert parse_query("title:network") == TermQuery(
            "network", field="title"
        )

    def test_field_phrase(self):
        assert parse_query('title:"cross tower TSA"') == PhraseQuery(
            "cross tower TSA", field="title"
        )

    def test_parentheses(self):
        query = parse_query("(a OR b) c")
        assert isinstance(query, AndQuery)
        assert isinstance(query.clauses[0], OrQuery)

    def test_nested_negated_group(self):
        query = parse_query("-(a OR b) c")
        assert isinstance(query, AndQuery)
        assert isinstance(query.clauses[0], NotQuery)

    def test_hyphenated_word_not_negation(self):
        # "cross-tower" has an internal hyphen; only a leading '-' negates.
        query = parse_query("cross-tower")
        assert query == TermQuery("cross-tower")


class TestErrors:
    @pytest.mark.parametrize("bad", ["", "   ", "()", "a OR", '"unclosed',
                                     "(a", "field:"])
    def test_syntax_errors(self, bad):
        with pytest.raises(QuerySyntaxError):
            parse_query(bad)
