"""Unit tests for the search engine: matching, ranking, filtering."""

import pytest

from repro.errors import SearchError
from repro.search import (
    Bm25Scorer,
    IndexableDocument,
    SearchEngine,
    TfidfScorer,
)


@pytest.fixture
def engine():
    e = SearchEngine()
    e.add_all(
        [
            IndexableDocument(
                "a",
                {"title": "End User Services scope",
                 "body": "Customer Services Center and Distributed "
                         "Client Services are in scope for this deal."},
                {"deal_id": "d1", "doc_type": "scope"},
            ),
            IndexableDocument(
                "b",
                {"title": "Technical solution",
                 "body": "data replication between the two data centers "
                         "with storage management services"},
                {"deal_id": "d2", "doc_type": "solution"},
            ),
            IndexableDocument(
                "c",
                {"title": "Team roster",
                 "body": "Sam White is the CSE. Contact "
                         "sam.white@abc.com for details."},
                {"deal_id": "d2", "doc_type": "roster"},
            ),
            IndexableDocument(
                "d",
                {"title": "Weekly minutes",
                 "body": "Nothing about services here, only schedules."},
                {"deal_id": "d3", "doc_type": "minutes"},
            ),
        ]
    )
    return e


class TestMatching:
    def test_and_semantics(self, engine):
        assert [h.doc_id for h in engine.search("data replication")] == ["b"]

    def test_query_with_no_hits(self, engine):
        assert engine.search("zeppelin") == []

    def test_stemming_collides_variants(self, engine):
        # "service" matches documents containing "services".
        assert engine.count("service") == engine.count("services")

    def test_phrase_vs_bag_of_words(self, engine):
        assert engine.count('"customer services center"') == 1
        # Bag of words also matches doc a only here, but scores differ.
        phrase_hit = engine.search('"customer services center"')[0]
        bag_hit = engine.search("customer services center")[0]
        assert phrase_hit.score > bag_hit.score

    def test_or(self, engine):
        assert engine.count("replication OR roster") == 2

    def test_negation(self, engine):
        ids = {h.doc_id for h in engine.search("services -replication")}
        assert ids == {"a", "d"}

    def test_pure_negation_matches_complement(self, engine):
        # Only doc c lacks the term "services".
        ids = {h.doc_id for h in engine.search("-services")}
        assert ids == {"c"}

    def test_field_search(self, engine):
        assert [h.doc_id for h in engine.search("title:roster")] == ["c"]
        assert engine.count("body:roster") == 0

    def test_count_matches_search_length(self, engine):
        assert engine.count("services") == len(engine.search("services"))

    def test_negation_inside_or(self, engine):
        # "-services" contributes the complement {c}; "replication"
        # contributes {b}.  The union keeps both.
        ids = {h.doc_id for h in engine.search("replication OR -services")}
        assert ids == {"b", "c"}

    def test_phrase_with_field_restriction(self, engine):
        hits = engine.search('title:"end user services"')
        assert [h.doc_id for h in hits] == ["a"]
        # The same phrase never occurs inside a body field.
        assert engine.count('body:"end user services"') == 0


class TestRanking:
    def test_scores_descending(self, engine):
        hits = engine.search("services")
        scores = [h.score for h in hits]
        assert scores == sorted(scores, reverse=True)

    def test_deterministic_tie_break(self, engine):
        hits = engine.search("services")
        # Re-running produces the identical order.
        assert [h.doc_id for h in hits] == [
            h.doc_id for h in engine.search("services")
        ]

    def test_limit(self, engine):
        assert len(engine.search("services", limit=1)) == 1

    def test_field_boost_changes_ranking(self):
        docs = [
            IndexableDocument("t", {"title": "replication", "body": "x y"}),
            IndexableDocument("b", {"title": "x", "body": "replication y"}),
        ]
        boosted = SearchEngine(field_boosts={"title": 5.0})
        boosted.add_all(docs)
        assert boosted.search("replication")[0].doc_id == "t"

    def test_tfidf_scorer_pluggable(self, engine):
        e = SearchEngine(scorer=TfidfScorer())
        e.add(IndexableDocument("x", {"body": "services services rare"}))
        e.add(IndexableDocument("y", {"body": "services"}))
        hits = e.search("services")
        assert hits[0].doc_id == "x"  # higher tf wins

    def test_bm25_parameter_validation(self):
        with pytest.raises(ValueError):
            Bm25Scorer(k1=-1)
        with pytest.raises(ValueError):
            Bm25Scorer(b=2.0)

    def test_rare_term_outscores_common(self, engine):
        # "replication" (df=1) should contribute more than "services" (df=3)
        rep = engine.search("replication")[0].score
        srv = max(h.score for h in engine.search("services"))
        assert rep > srv * 0.5  # same ballpark check; rare term is strong


class TestFiltering:
    def test_doc_filter_by_set(self, engine):
        hits = engine.search("services", doc_filter={"a", "d"})
        assert {h.doc_id for h in hits} == {"a", "d"}

    def test_doc_filter_by_predicate(self, engine):
        hits = engine.search(
            "services",
            doc_filter=lambda d: d.metadata.get("deal_id") == "d2",
        )
        assert {h.doc_id for h in hits} == {"b"}

    def test_count_respects_filter(self, engine):
        assert engine.count("services", doc_filter={"a"}) == 1

    def test_doc_filter_by_frozenset(self, engine):
        # Regression: the seed only recognised the concrete ``set``
        # type and crashed trying to call a frozenset as a predicate.
        hits = engine.search("services", doc_filter=frozenset({"a", "d"}))
        assert {h.doc_id for h in hits} == {"a", "d"}

    def test_doc_filter_by_dict_key_view(self, engine):
        # Any collections.abc.Set works, including dict key views.
        allowed = {"b": None, "d": None}
        hits = engine.search("services", doc_filter=allowed.keys())
        assert {h.doc_id for h in hits} == {"b", "d"}

    def test_predicate_filter_sees_only_candidates(self, engine):
        # Regression: the seed materialised the predicate over the whole
        # corpus; it must run only against already-matched candidates.
        seen = []

        def predicate(document):
            seen.append(document.doc_id)
            return True

        hits = engine.search("replication", doc_filter=predicate)
        assert [h.doc_id for h in hits] == ["b"]
        assert seen == ["b"]  # never called for a, c, d

    def test_invalid_doc_filter_raises(self, engine):
        with pytest.raises(SearchError):
            engine.search("services", doc_filter=42)


class TestSnippets:
    def test_snippet_contains_match(self, engine):
        hit = engine.search("replication")[0]
        assert "replication" in hit.snippet.lower()

    def test_snippet_fallback_for_negation_only(self, engine):
        hit = engine.search("-zeppelin")[0]
        assert hit.snippet  # leading text used as fallback

    def test_snippet_fallback_when_surface_not_in_text(self, engine):
        # Stemming matches "scheduling" against "schedules", but the
        # query surface never occurs verbatim, so the snippet falls
        # back to the document's leading text instead of crashing or
        # returning an empty string.
        hits = engine.search("scheduling")
        assert [h.doc_id for h in hits] == ["d"]
        assert hits[0].snippet
        assert "scheduling" not in hits[0].snippet.lower()


class TestLifecycle:
    def test_remove_then_search(self, engine):
        engine.remove("b")
        assert engine.count("replication") == 0
        assert len(engine) == 3

    def test_metadata_carried_through(self, engine):
        hit = engine.search("replication")[0]
        assert hit.metadata["deal_id"] == "d2"

    def test_document_validation(self):
        with pytest.raises(SearchError):
            IndexableDocument("", {"a": "b"})
        with pytest.raises(SearchError):
            IndexableDocument("x", {})
        with pytest.raises(SearchError):
            IndexableDocument("x", {"a": 42})
