"""Unit tests for the SIAPI facade: form queries and scoped search."""

import pytest

from repro.errors import QuerySyntaxError
from repro.search import (
    AndQuery,
    IndexableDocument,
    NotQuery,
    OrQuery,
    PhraseQuery,
    SearchEngine,
    SiapiQuery,
    SiapiService,
    TermQuery,
)


@pytest.fixture
def service():
    engine = SearchEngine()
    engine.add_all(
        [
            IndexableDocument(
                "a1", {"body": "storage management services with data "
                               "replication plan"},
                {"deal_id": "A"},
            ),
            IndexableDocument(
                "a2", {"body": "delivery schedule for storage management"},
                {"deal_id": "A"},
            ),
            IndexableDocument(
                "b1", {"body": "data replication appendix boilerplate"},
                {"deal_id": "B"},
            ),
            IndexableDocument(
                "c1", {"body": "unrelated networking document"},
                {"deal_id": "C"},
            ),
        ]
    )
    return SiapiService(engine)


class TestSiapiQuery:
    def test_all_words_compiles_to_and(self):
        query = SiapiQuery(all_words="storage management").to_query()
        assert isinstance(query, AndQuery)
        assert all(isinstance(c, TermQuery) for c in query.clauses)

    def test_exact_phrase(self):
        query = SiapiQuery(exact_phrase="data replication").to_query()
        assert query == PhraseQuery("data replication")

    def test_any_words_compiles_to_or(self):
        query = SiapiQuery(any_words="csc eus").to_query()
        assert isinstance(query, OrQuery)

    def test_single_any_word_unwrapped(self):
        assert SiapiQuery(any_words="csc").to_query() == TermQuery("csc")

    def test_none_words_negated(self):
        query = SiapiQuery(all_words="plan", none_words="boilerplate")
        compiled = query.to_query()
        assert isinstance(compiled, AndQuery)
        assert isinstance(compiled.clauses[-1], NotQuery)

    def test_search_field_propagates(self):
        query = SiapiQuery(all_words="plan", search_field="title").to_query()
        assert query.field == "title"

    def test_raw_combined(self):
        query = SiapiQuery(all_words="plan", raw='"data replication"')
        compiled = query.to_query()
        assert isinstance(compiled, AndQuery)

    def test_empty_rejected(self):
        assert SiapiQuery().is_empty()
        with pytest.raises(QuerySyntaxError):
            SiapiQuery().to_query()


class TestScopedSearch:
    def test_unscoped(self, service):
        hits = service.search(SiapiQuery(exact_phrase="data replication"))
        assert {h.doc_id for h in hits} == {"a1", "b1"}

    def test_scoped_to_activities(self, service):
        hits = service.search(
            SiapiQuery(exact_phrase="data replication"), scope={"A"}
        )
        assert {h.doc_id for h in hits} == {"a1"}

    def test_scope_empty_set_means_nothing(self, service):
        assert service.search(SiapiQuery(all_words="data"), scope=set()) == []

    def test_count(self, service):
        assert service.count(SiapiQuery(all_words="storage")) == 2
        assert service.count(SiapiQuery(all_words="storage"), {"B"}) == 0


class TestGroupedResults:
    def test_grouping_and_ordering(self, service):
        groups = service.search_grouped(SiapiQuery(all_words="storage"))
        assert [g.activity_id for g in groups] == ["A"]
        assert len(groups[0].hits) == 2

    def test_scores_normalized(self, service):
        groups = service.search_grouped(
            SiapiQuery(exact_phrase="data replication")
        )
        assert all(0.0 <= g.score <= 1.0 for g in groups)

    def test_per_activity_limit(self, service):
        groups = service.search_grouped(
            SiapiQuery(all_words="storage"), per_activity_limit=1
        )
        assert len(groups[0].hits) == 1

    def test_no_hits(self, service):
        assert service.search_grouped(SiapiQuery(all_words="zzz")) == []

    def test_activity_ranking_prefers_consistent_matches(self, service):
        # Deal A has the phrase in 1 of 2 docs; deal B in its only doc.
        groups = service.search_grouped(
            SiapiQuery(exact_phrase="data replication")
        )
        by_id = {g.activity_id: g.score for g in groups}
        assert set(by_id) == {"A", "B"}
