"""Unit tests for the bounded LRU cache (repro.cache)."""

import pytest

from repro import obs
from repro.cache import LruCache


@pytest.fixture
def registry():
    with obs.use_registry() as fresh:
        yield fresh


class TestLruCache:
    def test_get_miss_then_hit(self, registry):
        cache = LruCache("t.cache", 4)
        assert cache.get("k") is None
        cache.put("k", "v")
        assert cache.get("k") == "v"
        assert registry.counters["t.cache.misses"].value == 1
        assert registry.counters["t.cache.hits"].value == 1

    def test_capacity_evicts_least_recently_used(self, registry):
        cache = LruCache("t.cache", 2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a; b is now LRU
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert registry.counters["t.cache.evictions"].value == 1

    def test_size_gauge_tracks_entries(self, registry):
        cache = LruCache("t.cache", 8)
        cache.put("a", 1)
        cache.put("b", 2)
        assert registry.gauges["t.cache.size"].value == 2
        cache.clear()
        assert registry.gauges["t.cache.size"].value == 0
        assert len(cache) == 0

    def test_put_refreshes_existing_key(self, registry):
        cache = LruCache("t.cache", 2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # refresh + overwrite, no eviction
        cache.put("c", 3)   # evicts b, not a
        assert cache.get("a") == 10
        assert cache.get("b") is None
        assert cache.get("c") == 3

    def test_zero_capacity_disables(self, registry):
        cache = LruCache("t.cache", 0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_invalid_capacity_and_values_rejected(self, registry):
        with pytest.raises(ValueError):
            LruCache("t.cache", -1)
        cache = LruCache("t.cache", 4)
        with pytest.raises(ValueError):
            cache.put("k", None)

    def test_contains(self, registry):
        cache = LruCache("t.cache", 4)
        cache.put("a", 1)
        assert "a" in cache
        assert "b" not in cache


class _Value:
    """A cacheable stand-in with the degraded/partial convention."""

    def __init__(self, degraded=None, partial=False):
        self.degraded = degraded
        self.partial = partial


class TestDegradedBypass:
    def test_storable_classification(self):
        assert LruCache.storable("plain value")
        assert LruCache.storable(_Value())
        assert not LruCache.storable(_Value(degraded="no-synopsis"))
        assert not LruCache.storable(_Value(partial=True))

    def test_degraded_value_never_stored(self, registry):
        cache = LruCache("t.cache", 4)
        cache.put("k", _Value(degraded="no-index"))
        assert cache.get("k") is None
        assert len(cache) == 0
        assert registry.counters["t.cache.bypassed"].value == 1

    def test_partial_value_never_stored(self, registry):
        cache = LruCache("t.cache", 4)
        cache.put("k", _Value(partial=True))
        assert "k" not in cache
        assert registry.counters["t.cache.bypassed"].value == 1

    def test_bypass_does_not_evict_good_entry(self, registry):
        # A degraded put for an existing key must not clobber the
        # full-fidelity entry already cached under it.
        cache = LruCache("t.cache", 4)
        good = _Value()
        cache.put("k", good)
        cache.put("k", _Value(degraded="no-synopsis"))
        assert cache.get("k") is good

    def test_clean_value_still_cached(self, registry):
        cache = LruCache("t.cache", 4)
        value = _Value()
        cache.put("k", value)
        assert cache.get("k") is value
        assert "t.cache.bypassed" not in registry.counters


class TestDisabledCacheMetricSemantics:
    """``max_entries=0`` disables storage, not classification: degraded
    puts still count as bypassed and ``None`` still raises, so metric
    meaning does not depend on cache sizing."""

    def test_degraded_put_counts_bypassed_when_disabled(self, registry):
        cache = LruCache("t.cache", 0)
        cache.put("k", _Value(degraded="no-index"))
        assert registry.counters["t.cache.bypassed"].value == 1
        assert len(cache) == 0

    def test_none_rejected_when_disabled(self, registry):
        cache = LruCache("t.cache", 0)
        with pytest.raises(ValueError):
            cache.put("k", None)

    def test_clean_put_stores_nothing_and_counts_nothing(self, registry):
        cache = LruCache("t.cache", 0)
        cache.put("k", _Value())
        assert cache.get("k") is None
        assert "t.cache.bypassed" not in registry.counters
        assert "t.cache.evictions" not in registry.counters
