"""Unit tests for the query analyzer, synopsis search and rank combiner."""

import pytest

from repro.annotators import ContactRecord, ScopeEntry
from repro.core import FormQuery, OrganizedInformation, RankCombiner
from repro.core.query_analyzer import SynopsisMatch, SynopsisSearch
from repro.corpus import build_default_taxonomy
from repro.errors import QuerySyntaxError
from repro.search import IndexableDocument, SearchHit
from repro.search.siapi import ActivityHits


class TestFormQuery:
    def test_criteria_predicates(self):
        assert FormQuery(tower="WAN").has_concept_criteria()
        assert FormQuery(all_words="x").has_text_criteria()
        assert FormQuery().is_empty()
        assert not FormQuery(tower="WAN").has_text_criteria()

    def test_invalid_search_in(self):
        with pytest.raises(QuerySyntaxError):
            FormQuery(search_in="everywhere")

    def test_siapi_query_only_for_ewb_text(self):
        assert FormQuery(tower="WAN").to_siapi_query() is None
        assert FormQuery(all_words="x").to_siapi_query() is not None
        assert FormQuery(
            all_words="x", search_in="synopsis"
        ).to_siapi_query() is None


@pytest.fixture
def organized():
    info = OrganizedInformation()
    for deal_id, name, industry, consultant in (
        ("d1", "DEAL A", "Insurance", "TPI"),
        ("d2", "DEAL B", "Banking", ""),
        ("d3", "DEAL C", "Insurance", "TPI"),
    ):
        info.store_deal_context(deal_id, {
            "Deal Name": name, "Industry": industry,
            "Out Sourcing Consultant": consultant,
            "Geography": "Americas (AM), United States",
        })
    info.store_scopes("d1", [
        ScopeEntry("Customer Service Center", "End User Services", 12.0, 4),
        ScopeEntry("WAN", "Network Services", 6.0, 2),
    ])
    info.store_scopes("d2", [
        ScopeEntry("WAN", "Network Services", 10.0, 3),
    ])
    info.store_scopes("d3", [
        ScopeEntry("Storage Management Services",
                   "Storage Management Services", 9.0, 3),
    ])
    info.store_contacts("d1", [
        ContactRecord("d1", "Sam White", "sam.white@abc.com", "", "ABC",
                      "Client Solution Executive", "core deal team",
                      mention_count=4),
    ])
    info.store_contacts("d3", [
        ContactRecord("d3", "Jane Doe", "jane.doe@x.com", "", "Initech",
                      "Technical Solution Architect",
                      "technical support team", mention_count=1),
    ])
    info.store_technologies("d3", [("data replication",
                                    "Storage Management Services")])
    return info


@pytest.fixture
def synopsis_search(organized):
    return SynopsisSearch(organized, build_default_taxonomy())


class TestSynopsisSearch:
    def test_tower_concept_expands_subtypes(self, synopsis_search):
        # Searching the parent finds the deal whose scope has the child.
        matches = synopsis_search.execute(
            FormQuery(tower="End User Services")
        )
        assert set(matches) == {"d1"}

    def test_tower_rank_drives_score(self, synopsis_search):
        matches = synopsis_search.execute(FormQuery(tower="WAN"))
        # d1 has WAN at rank 1, d2 at rank 0 -> d2 scores higher.
        assert matches["d2"].score > matches["d1"].score

    def test_industry_filter(self, synopsis_search):
        matches = synopsis_search.execute(FormQuery(industry="insur"))
        assert set(matches) == {"d1", "d3"}

    def test_conjunction_of_criteria(self, synopsis_search):
        matches = synopsis_search.execute(
            FormQuery(industry="Insurance", tower="WAN")
        )
        assert set(matches) == {"d1"}

    def test_people_by_name(self, synopsis_search):
        matches = synopsis_search.execute(FormQuery(person_name="sam"))
        assert set(matches) == {"d1"}

    def test_people_by_role_normalized(self, synopsis_search):
        matches = synopsis_search.execute(FormQuery(role="CSE"))
        assert set(matches) == {"d1"}

    def test_people_by_organization(self, synopsis_search):
        matches = synopsis_search.execute(FormQuery(organization="initech"))
        assert set(matches) == {"d3"}

    def test_synopsis_text_search(self, synopsis_search):
        matches = synopsis_search.execute(
            FormQuery(exact_phrase="data replication",
                      search_in="synopsis")
        )
        assert set(matches) == {"d3"}

    def test_no_concept_criteria_returns_empty(self, synopsis_search):
        assert synopsis_search.execute(FormQuery(all_words="x")) == {}

    def test_unknown_tower_returns_empty(self, synopsis_search):
        assert synopsis_search.execute(
            FormQuery(tower="Quantum Services")
        ) == {}

    def test_reasons_recorded(self, synopsis_search):
        matches = synopsis_search.execute(FormQuery(tower="WAN"))
        assert any("tower" in r for r in matches["d2"].reasons)


def hit(doc_id, deal_id, score=1.0):
    return SearchHit(
        doc_id, score,
        IndexableDocument(doc_id, {"body": "x"}, {"deal_id": deal_id}),
    )


class TestRankCombiner:
    def test_weight_validation(self):
        with pytest.raises(ValueError):
            RankCombiner(synopsis_weight=1.5)

    def test_combines_both_sources(self):
        combiner = RankCombiner(synopsis_weight=0.5)
        ranked = combiner.combine(
            {"d1": SynopsisMatch("d1", 1.0), "d2": SynopsisMatch("d2", 0.4)},
            [ActivityHits("d1", 0.2, [hit("x", "d1")]),
             ActivityHits("d2", 1.0, [hit("y", "d2")])],
        )
        by_id = {r.deal_id: r for r in ranked}
        assert by_id["d1"].score == pytest.approx(0.6)
        assert by_id["d2"].score == pytest.approx(0.7)
        assert ranked[0].deal_id == "d2"

    def test_single_source_not_scaled(self):
        combiner = RankCombiner(synopsis_weight=0.5)
        ranked = combiner.combine(
            {"d1": SynopsisMatch("d1", 0.8)}, None
        )
        assert ranked[0].score == pytest.approx(0.8)

    def test_siapi_only_activity(self):
        combiner = RankCombiner()
        ranked = combiner.combine(
            {}, [ActivityHits("d9", 0.9, [hit("x", "d9")])]
        )
        assert ranked[0].deal_id == "d9"
        assert ranked[0].synopsis_score == 0.0

    def test_deterministic_tie_break(self):
        combiner = RankCombiner()
        ranked = combiner.combine(
            {"b": SynopsisMatch("b", 0.5), "a": SynopsisMatch("a", 0.5)},
            None,
        )
        assert [r.deal_id for r in ranked] == ["a", "b"]

    def test_hits_carried_through(self):
        combiner = RankCombiner()
        ranked = combiner.combine(
            {}, [ActivityHits("d1", 0.5, [hit("x", "d1"), hit("y", "d1")])]
        )
        assert len(ranked[0].hits) == 2
