"""The online degradation ladder (repro.core.search under faults).

Each rung of docs/OPERATIONS.md's ladder, exercised end to end with an
armed fault injector: synopsis store down, index down, both down — plus
the invariants around it (degraded results are flagged, carry the
fallback content, are never cached, and user errors stay user errors).
"""

import pytest

from repro import CorpusConfig, CorpusGenerator, EILSystem, User, obs
from repro.core.metaqueries import (
    scope_query,
    service_keyword_query,
    worked_with_query,
)
from repro.core.presentation import render_results
from repro.core.query_analyzer import FormQuery
from repro.errors import EILUnavailableError, QuerySyntaxError
from repro.faults import FaultInjector, FaultProfile, use_injector

SALES = User("u", frozenset({"sales"}))

DB_DOWN = "db:error=1.0"
INDEX_DOWN = "index:error=1.0"
BOTH_DOWN = "db:error=1.0;index:error=1.0"


@pytest.fixture
def registry():
    with obs.use_registry() as fresh:
        yield fresh


@pytest.fixture(scope="module")
def corpus():
    return CorpusGenerator(
        CorpusConfig(n_deals=4, docs_per_deal=14)
    ).generate()


@pytest.fixture
def eil(corpus, registry):
    # Function-scoped: every test gets fresh breakers and caches.
    return EILSystem.build(corpus)


def _inject(spec):
    return use_injector(FaultInjector(FaultProfile.parse(spec)))


def _text_form(corpus):
    # Chosen so the 4-deal corpus yields BOTH synopsis matches and
    # keyword hits: the query exercises the scoped (Fig. 1 step 8)
    # path when healthy and has a fallback for either outage.
    return service_keyword_query("End User Services", "service")


class TestSynopsisDownRung:
    def test_text_query_degrades_to_keyword_only(self, eil, corpus,
                                                 registry):
        with _inject(DB_DOWN):
            results = eil.search(_text_form(corpus), SALES)
        assert results.degraded == "no-synopsis"
        assert not results.scoped
        assert results.activities, "keyword fallback should find hits"
        assert all(a.synopsis_score == 0.0 for a in results.activities)
        assert registry.counters["query.degraded"].value == 1
        assert (
            registry.counters["query.degraded.no-synopsis"].value == 1
        )

    def test_structured_only_query_degrades_empty(self, eil, registry):
        # No text criteria to fall back to: empty, flagged, no crash.
        with _inject(DB_DOWN):
            results = eil.search(scope_query("End User Services"), SALES)
        assert results.degraded == "no-synopsis"
        assert results.activities == []

    def test_presentation_survives_db_down(self, eil, corpus, registry):
        # deal_row lookups fail too; names fall back to the deal id.
        with _inject(DB_DOWN):
            results = eil.search(_text_form(corpus), SALES)
        rendered = render_results(results)
        assert "degraded" in rendered
        assert "synopsis store unavailable" in rendered


class TestIndexDownRung:
    def test_text_query_keeps_synopsis_and_contacts(self, eil, corpus,
                                                    registry):
        clean = eil.search(_text_form(corpus), SALES)
        assert clean.degraded is None
        eil._search._cache.clear()
        with _inject(INDEX_DOWN):
            results = eil.search(_text_form(corpus), SALES)
        assert results.degraded == "no-index"
        assert results.activities, "synopsis matches must stand"
        assert all(not a.documents for a in results.activities)
        assert any(a.contacts for a in results.activities), (
            "the no-index rung is the synopsis + contact-list view"
        )
        assert (
            registry.counters["query.degraded.no-index"].value == 1
        )

    def test_structured_only_query_unaffected(self, eil, registry):
        # No text criteria means the index is never consulted.
        with _inject(INDEX_DOWN):
            results = eil.search(scope_query("End User Services"), SALES)
        assert results.degraded is None

    def test_rendered_with_banner_and_contacts(self, eil, corpus,
                                               registry):
        with _inject(INDEX_DOWN):
            results = eil.search(_text_form(corpus), SALES)
        rendered = render_results(results)
        assert "search index unavailable" in rendered
        assert "contacts:" in rendered


class TestBothDownRung:
    def test_structured_error_names_both_failures(self, eil, corpus,
                                                  registry):
        with _inject(BOTH_DOWN):
            with pytest.raises(EILUnavailableError) as excinfo:
                eil.search(_text_form(corpus), SALES)
        assert set(excinfo.value.failures) == {"synopsis", "index"}
        assert registry.counters["query.unavailable"].value == 1

    def test_structured_only_query_still_degrades(self, eil, registry):
        # Without text criteria the index is irrelevant; the double
        # outage behaves like the synopsis-down rung.
        with _inject(BOTH_DOWN):
            results = eil.search(scope_query("End User Services"), SALES)
        assert results.degraded == "no-synopsis"


class TestDegradedNeverCached:
    def test_full_fidelity_returns_after_outage(self, eil, corpus,
                                                registry):
        form = _text_form(corpus)
        with _inject(DB_DOWN):
            degraded = eil.search(form, SALES)
        assert degraded.degraded == "no-synopsis"
        assert registry.counters["query.cache.bypassed"].value == 1
        # Outage over: the same query must re-execute, not replay the
        # thinned-out answer.
        results = eil.search(form, SALES)
        assert results.degraded is None
        assert results.scoped

    def test_cached_clean_result_survives_outage(self, eil, corpus,
                                                 registry):
        # The inverse direction: a result cached before the outage is
        # still served during it — the cache is a resilience asset.
        form = _text_form(corpus)
        clean = eil.search(form, SALES)
        with _inject(DB_DOWN):
            cached = eil.search(form, SALES)
        assert cached.degraded is None
        assert cached.deal_ids == clean.deal_ids


class TestUserErrorsStayUserErrors:
    def test_empty_form_raises_even_under_faults(self, eil, registry):
        with _inject(BOTH_DOWN):
            with pytest.raises(QuerySyntaxError):
                eil.search(FormQuery(), SALES)

    def test_query_syntax_error_does_not_trip_breaker(self, eil, corpus,
                                                      registry):
        # A user's malformed query is never a substrate outage: both
        # breakers are configured to ignore QuerySyntaxError.
        search = eil._search

        def bad():
            raise QuerySyntaxError("unbalanced quote")

        for breaker in (search.siapi_breaker, search.synopsis_breaker):
            for _ in range(breaker.failure_threshold + 1):
                with pytest.raises(QuerySyntaxError):
                    breaker.call(bad)
            assert breaker.state == "closed"
        clean = eil.search(_text_form(corpus), SALES)
        assert clean.degraded is None


class TestBreakerSheddingUnderOutage:
    def test_synopsis_breaker_opens_and_sheds(self, eil, corpus,
                                              registry):
        search = eil._search
        threshold = search.synopsis_breaker.failure_threshold
        forms = [
            worked_with_query(f"nobody-{i}") for i in range(threshold + 2)
        ]
        with _inject(DB_DOWN):
            for form in forms:
                results = eil.search(form, SALES)
                assert results.degraded == "no-synopsis"
        assert search.synopsis_breaker.state == "open"
        assert registry.counters["breaker.open.synopsis"].value == 1
        # Once open, queries shed load: the store is no longer hit.
        rejected = registry.counters["breaker.rejected.synopsis"].value
        assert rejected >= 1
