"""Determinism suite: parallel offline builds equal the serial build.

The CPE merges per-worker CAS streams back in stable document order
before any collection-level consumer runs, so ``analyze(workers=N)``
must produce :class:`AnalysisResults` *equal* to the serial run, and a
parallel-built :class:`EILSystem` must answer queries identically.
"""

import threading

import pytest

from repro import CorpusConfig, CorpusGenerator, EILSystem, User, obs
from repro.core import scope_query
from repro.core.analysis import InformationAnalysis
from repro.core.metaqueries import service_keyword_query
from repro.errors import AnnotatorError, TransientError
from repro.uima.cas import Cas
from repro.uima.cpe import CollectionProcessingEngine
from repro.uima.engine import AnalysisEngine
from repro.uima.typesystem import TypeSystem

SALES = User("u", frozenset({"sales"}))


@pytest.fixture(scope="module")
def corpus():
    return CorpusGenerator(
        CorpusConfig(n_deals=4, docs_per_deal=14)
    ).generate()


class TestParallelAnalysisDeterminism:
    def test_workers_4_equals_serial(self, corpus):
        serial = InformationAnalysis(
            corpus.taxonomy, corpus.directory
        ).analyze(corpus.collection)
        parallel = InformationAnalysis(
            corpus.taxonomy, corpus.directory
        ).analyze(corpus.collection, workers=4)
        assert parallel == serial

    def test_odd_worker_count_equals_serial(self, corpus):
        serial = InformationAnalysis(
            corpus.taxonomy, corpus.directory
        ).analyze(corpus.collection)
        parallel = InformationAnalysis(
            corpus.taxonomy, corpus.directory
        ).analyze(corpus.collection, workers=3)
        assert parallel == serial

    def test_workers_beyond_document_count(self, corpus):
        # More workers than documents must not drop or reorder output.
        serial = InformationAnalysis(
            corpus.taxonomy, corpus.directory
        ).analyze(corpus.collection)
        parallel = InformationAnalysis(
            corpus.taxonomy, corpus.directory
        ).analyze(corpus.collection, workers=128)
        assert parallel == serial


class TestParallelSystemBuild:
    def test_parallel_build_report_matches_serial(self, corpus):
        serial = EILSystem.build(corpus)
        parallel = EILSystem.build(corpus, workers=4)
        assert parallel.build_report == serial.build_report
        assert parallel.analysis_results == serial.analysis_results

    def test_parallel_build_answers_identically(self, corpus):
        serial = EILSystem.build(corpus)
        parallel = EILSystem.build(corpus, workers=4)
        for form in (
            scope_query("End User Services"),
            service_keyword_query("Storage Management Services",
                                  "data replication"),
        ):
            left = serial.search(form, SALES)
            right = parallel.search(form, SALES)
            assert left.deal_ids == right.deal_ids
            assert left.plan == right.plan
            assert left.scoped == right.scoped

    def test_invalid_workers_rejected(self, corpus):
        with pytest.raises(ValueError):
            EILSystem.build(corpus, workers=0)


def _type_system():
    ts = TypeSystem()
    ts.define("t.Word", ["text"])
    return ts


class _RecordingEngine(AnalysisEngine):
    """Counts processed documents; fails or stalls on demand."""

    name = "recording"

    def __init__(self, fail_at=frozenset(), stall_at=frozenset(),
                 stall_seconds=0.0):
        self.fail_at = set(fail_at)
        self.stall_at = set(stall_at)
        self.stall_seconds = stall_seconds
        self.processed = []
        self._lock = threading.Lock()

    def process(self, cas: Cas) -> None:
        doc_id = cas.metadata["doc_id"]
        with self._lock:
            self.processed.append(doc_id)
        if doc_id in self.stall_at and self.stall_seconds:
            import time
            time.sleep(self.stall_seconds)
        if doc_id in self.fail_at:
            raise AnnotatorError(f"hard failure at {doc_id}")


def _collection(ts, n):
    return [
        Cas(f"text {i:04d}", ts, {"doc_id": i, "deal_id": f"deal-{i % 3}"})
        for i in range(n)
    ]


class TestStreamingFailureParity:
    """``continue_on_error=False`` fails at the serial run's document,
    with wasted work bounded by the in-flight window, not the corpus."""

    def test_serial_and_threads_raise_at_same_document(self):
        ts = _type_system()
        serial_engine = _RecordingEngine(fail_at={5})
        with pytest.raises(AnnotatorError, match="at 5"):
            CollectionProcessingEngine(
                serial_engine, continue_on_error=False
            ).run(_collection(ts, 60))
        assert serial_engine.processed == list(range(6))

        threads_engine = _RecordingEngine(fail_at={5})
        with pytest.raises(AnnotatorError, match="at 5"):
            CollectionProcessingEngine(
                threads_engine, continue_on_error=False
            ).run(_collection(ts, 60), workers=2, executor="threads")
        # Submission window is workers * 4 plus the pool's in-flight
        # slots — nowhere near the 60-document collection the old
        # list(pool.map(...)) path would have burned through.
        assert len(threads_engine.processed) <= 5 + 1 + 2 * 4 + 2

    def test_fatal_prepare_error_stops_submission(self):
        ts = _type_system()
        engine = _RecordingEngine()
        seen = []

        def prepare(item):
            seen.append(item)
            if item == 7:
                raise AnnotatorError("collection broken at 7")
            return Cas(f"text {item}", ts, {"doc_id": item,
                                            "deal_id": "d"})

        with pytest.raises(AnnotatorError, match="at 7"):
            CollectionProcessingEngine(engine).run(
                list(range(50)), prepare=prepare, workers=2,
                executor="threads",
            )
        assert len(seen) <= 7 + 1 + 2 * 4 + 2

    def test_processes_raise_at_same_document(self):
        ts = _type_system()
        with pytest.raises(AnnotatorError, match="at 5"):
            CollectionProcessingEngine(
                _RecordingEngine(fail_at={5}), continue_on_error=False
            ).run(_collection(ts, 30), workers=2, executor="processes",
                  shard_key=lambda cas: cas.metadata["deal_id"])


class TestElapsedAccounting:
    """Every outcome records its real elapsed time, so slow-then-failing
    documents stay visible under ``cpe.document_seconds.failed``."""

    STALL = 0.02

    def _run(self, engine, ts, n=6):
        with obs.use_registry(obs.MetricsRegistry()) as registry:
            CollectionProcessingEngine(engine).run(_collection(ts, n))
        return registry

    def test_failed_documents_record_elapsed(self):
        ts = _type_system()
        registry = self._run(_RecordingEngine(
            fail_at={2}, stall_at={2}, stall_seconds=self.STALL
        ), ts)
        histogram = registry.histograms["cpe.document_seconds.failed"]
        assert histogram.count == 1
        assert histogram.max >= self.STALL

    def test_transient_quarantine_records_elapsed(self):
        # Transients come from the substrates (prepare side), as in
        # the real pipeline where repository/crawler checks fire.
        ts = _type_system()
        stall = self.STALL

        def prepare(item):
            if item == 3:
                import time
                time.sleep(stall)
                raise TransientError("substrate blip at 3")
            return Cas(f"text {item}", ts, {"doc_id": item,
                                            "deal_id": "d"})

        with obs.use_registry(obs.MetricsRegistry()) as registry:
            CollectionProcessingEngine(_RecordingEngine()).run(
                list(range(6)), prepare=prepare
            )
        histogram = registry.histograms[
            "cpe.document_seconds.quarantined"
        ]
        assert histogram.count == 1
        assert histogram.max >= self.STALL

    def test_successes_keep_their_histogram(self):
        ts = _type_system()
        registry = self._run(_RecordingEngine(), ts)
        assert registry.histograms["cpe.document_seconds"].count == 6
        assert "cpe.document_seconds.failed" not in registry.histograms
