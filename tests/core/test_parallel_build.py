"""Determinism suite: parallel offline builds equal the serial build.

The CPE merges per-worker CAS streams back in stable document order
before any collection-level consumer runs, so ``analyze(workers=N)``
must produce :class:`AnalysisResults` *equal* to the serial run, and a
parallel-built :class:`EILSystem` must answer queries identically.
"""

import pytest

from repro import CorpusConfig, CorpusGenerator, EILSystem, User
from repro.core import scope_query
from repro.core.analysis import InformationAnalysis
from repro.core.metaqueries import service_keyword_query

SALES = User("u", frozenset({"sales"}))


@pytest.fixture(scope="module")
def corpus():
    return CorpusGenerator(
        CorpusConfig(n_deals=4, docs_per_deal=14)
    ).generate()


class TestParallelAnalysisDeterminism:
    def test_workers_4_equals_serial(self, corpus):
        serial = InformationAnalysis(
            corpus.taxonomy, corpus.directory
        ).analyze(corpus.collection)
        parallel = InformationAnalysis(
            corpus.taxonomy, corpus.directory
        ).analyze(corpus.collection, workers=4)
        assert parallel == serial

    def test_odd_worker_count_equals_serial(self, corpus):
        serial = InformationAnalysis(
            corpus.taxonomy, corpus.directory
        ).analyze(corpus.collection)
        parallel = InformationAnalysis(
            corpus.taxonomy, corpus.directory
        ).analyze(corpus.collection, workers=3)
        assert parallel == serial

    def test_workers_beyond_document_count(self, corpus):
        # More workers than documents must not drop or reorder output.
        serial = InformationAnalysis(
            corpus.taxonomy, corpus.directory
        ).analyze(corpus.collection)
        parallel = InformationAnalysis(
            corpus.taxonomy, corpus.directory
        ).analyze(corpus.collection, workers=128)
        assert parallel == serial


class TestParallelSystemBuild:
    def test_parallel_build_report_matches_serial(self, corpus):
        serial = EILSystem.build(corpus)
        parallel = EILSystem.build(corpus, workers=4)
        assert parallel.build_report == serial.build_report
        assert parallel.analysis_results == serial.analysis_results

    def test_parallel_build_answers_identically(self, corpus):
        serial = EILSystem.build(corpus)
        parallel = EILSystem.build(corpus, workers=4)
        for form in (
            scope_query("End User Services"),
            service_keyword_query("Storage Management Services",
                                  "data replication"),
        ):
            left = serial.search(form, SALES)
            right = parallel.search(form, SALES)
            assert left.deal_ids == right.deal_ids
            assert left.plan == right.plan
            assert left.scoped == right.scoped

    def test_invalid_workers_rejected(self, corpus):
        with pytest.raises(ValueError):
            EILSystem.build(corpus, workers=0)
