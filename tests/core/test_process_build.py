"""Determinism suite for the ``processes`` executor.

Mirrors ``tests/core/test_parallel_build.py`` for true multi-core
builds: the CPE shards the corpus by deal across worker processes and
merges pickled per-document outcomes back in stable document order, so
``analyze(workers=N, executor="processes")`` must produce
:class:`AnalysisResults` (and the CPE a :class:`CpeReport`) identical
to the serial run at any worker count — including under an active
fault profile, whose keyed draws are re-seeded per worker process
rather than inherited via fork state.
"""

import pickle

import pytest

from repro import CorpusConfig, CorpusGenerator, EILSystem, User, obs
from repro.annotators.base import register_eil_types
from repro.core import scope_query
from repro.core.analysis import InformationAnalysis
from repro.core.metaqueries import service_keyword_query
from repro.errors import AnnotatorError
from repro.faults import FaultInjector, FaultProfile, use_injector
from repro.uima.cas import Cas
from repro.uima.cpe import CasConsumer, CollectionProcessingEngine
from repro.uima.engine import AnalysisEngine
from repro.uima.typesystem import TypeSystem

SALES = User("u", frozenset({"sales"}))


@pytest.fixture(scope="module")
def corpus():
    return CorpusGenerator(
        CorpusConfig(n_deals=4, docs_per_deal=14)
    ).generate()


@pytest.fixture(scope="module")
def serial_results(corpus):
    return InformationAnalysis(
        corpus.taxonomy, corpus.directory
    ).analyze(corpus.collection)


class TestProcessAnalysisDeterminism:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_processes_equal_serial(self, corpus, serial_results, workers):
        parallel = InformationAnalysis(
            corpus.taxonomy, corpus.directory
        ).analyze(corpus.collection, workers=workers,
                  executor="processes")
        assert parallel == serial_results
        # Identical down to the rendered form, not just field-wise.
        assert repr(parallel) == repr(serial_results)

    def test_workers_beyond_deal_count(self, corpus, serial_results):
        # Sharding is by deal; more workers than shards must not drop
        # or reorder output.
        parallel = InformationAnalysis(
            corpus.taxonomy, corpus.directory
        ).analyze(corpus.collection, workers=64, executor="processes")
        assert parallel == serial_results


class TestProcessDeterminismUnderFaults:
    PROFILE = FaultProfile.parse("analysis:error=0.3")

    def _analyze(self, corpus, workers, executor):
        with use_injector(FaultInjector(self.PROFILE, seed=7)):
            with obs.use_registry(obs.MetricsRegistry()) as registry:
                results = InformationAnalysis(
                    corpus.taxonomy, corpus.directory
                ).analyze(corpus.collection, workers=workers,
                          executor=executor)
        return results, registry

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_keyed_draws_identical_across_executors(self, corpus, workers):
        serial, serial_registry = self._analyze(corpus, 1, "serial")
        assert serial.documents_quarantined > 0  # the profile bites
        parallel, registry = self._analyze(corpus, workers, "processes")
        assert parallel == serial
        assert parallel.quarantined == serial.quarantined
        # Worker-side telemetry merges back into the parent registry:
        # the same number of faults fired, in worker processes or not.
        assert (registry.counters["faults.injected"].value
                == serial_registry.counters["faults.injected"].value)

    def test_threads_and_processes_agree_under_faults(self, corpus):
        threads, _ = self._analyze(corpus, 3, "threads")
        processes, _ = self._analyze(corpus, 3, "processes")
        assert threads == processes


class TestProcessSystemBuild:
    def test_process_build_matches_serial(self, corpus):
        serial = EILSystem.build(corpus)
        parallel = EILSystem.build(corpus, workers=4,
                                   executor="processes")
        assert parallel.build_report == serial.build_report
        assert parallel.analysis_results == serial.analysis_results

    def test_process_build_answers_identically(self, corpus):
        serial = EILSystem.build(corpus)
        parallel = EILSystem.build(corpus, workers=2,
                                   executor="processes")
        for form in (
            scope_query("End User Services"),
            service_keyword_query("Storage Management Services",
                                  "data replication"),
        ):
            left = serial.search(form, SALES)
            right = parallel.search(form, SALES)
            assert left.deal_ids == right.deal_ids
            assert left.plan == right.plan
            assert left.scoped == right.scoped

    def test_invalid_executor_rejected(self, corpus):
        with pytest.raises(ValueError):
            EILSystem.build(corpus, workers=2, executor="fibers")


class _CountingConsumer(CasConsumer):
    """Orders and counts the CASes it is fed."""

    name = "counting"

    def __init__(self):
        self.doc_ids = []

    def process_cas(self, cas: Cas) -> None:
        self.doc_ids.append(cas.metadata["doc_id"])

    def collection_process_complete(self):
        return list(self.doc_ids)


class _FlakyEngine(AnalysisEngine):
    """Deterministically fails every seventh document."""

    name = "flaky"

    def process(self, cas: Cas) -> None:
        doc_id = cas.metadata["doc_id"]
        cas.annotate("t.Word", 0, 4, text=f"w{doc_id}")
        if doc_id % 7 == 3:
            raise AnnotatorError(f"bad document {doc_id}")


def _type_system():
    ts = TypeSystem()
    ts.define("t.Word", ["text"])
    return ts


def _collection(ts, n):
    return [
        Cas(f"text {i:04d}", ts,
            {"doc_id": i, "deal_id": f"deal-{i % 5}"})
        for i in range(n)
    ]


class TestCpeReportEquality:
    """CpeReport — counts, failure lines, consumer order — is identical."""

    def _run(self, executor, workers):
        ts = _type_system()
        cpe = CollectionProcessingEngine(
            _FlakyEngine(), [_CountingConsumer()]
        )
        return cpe.run(
            _collection(ts, 30), workers=workers, executor=executor,
            shard_key=lambda cas: cas.metadata["deal_id"],
        )

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_report_identical_at_any_width(self, workers):
        serial = self._run("serial", 1)
        parallel = self._run("processes", workers)
        assert parallel == serial
        assert pickle.dumps(parallel) == pickle.dumps(serial)
        assert parallel.consumer_results["counting"] == sorted(
            parallel.consumer_results["counting"]
        )

    def test_failure_lines_attributable(self):
        report = self._run("processes", 3)
        assert report.documents_failed == 4  # docs 3, 10, 17, 24
        for line in report.failures:
            assert "AnnotatorError" in line and "deal" in line


class TestCasPickleRoundTrip:
    def test_round_trip_preserves_everything(self):
        ts = _type_system()
        cas = Cas("alpha beta gamma", ts, {"doc_id": "d1",
                                           "deal_id": "deal-1"})
        first = cas.annotate("t.Word", 0, 5, text="alpha")
        cas.annotate("t.Word", 6, 10, text="beta")
        clone = pickle.loads(pickle.dumps(cas))
        assert clone.text == cas.text
        assert clone.metadata == cas.metadata
        assert list(clone) == list(cas)
        assert clone.covered_text(list(clone)[0]) == "alpha"
        assert clone.type_system.all_features("t.Word") == {"text"}
        assert first in list(clone.select("t.Word"))

    def test_round_trip_keeps_assigning_unique_ids(self):
        ts = _type_system()
        cas = Cas("alpha beta", ts)
        cas.annotate("t.Word", 0, 5, text="alpha")
        clone = pickle.loads(pickle.dumps(cas))
        fresh = clone.annotate("t.Word", 6, 10, text="beta")
        ids = [a.annotation_id for a in clone]
        assert fresh.annotation_id not in ids[:-1]
        assert len(ids) == len(set(ids))

    def test_annotated_analysis_cas_round_trips(self, corpus):
        analysis = InformationAnalysis(corpus.taxonomy, corpus.directory)
        document = next(iter(corpus.collection)).documents()[0]
        cas = analysis._parse_one(document)
        analysis.pipeline.run(cas)
        clone = pickle.loads(pickle.dumps(cas))
        assert list(clone) == list(cas)
        assert clone.metadata == cas.metadata


class TestProcessModeRequirements:
    def test_register_types_importable(self):
        # Worker processes re-import the annotator modules under
        # spawn; the registration entry points must stay module-level.
        assert callable(register_eil_types)

    def test_environment_defaults(self, corpus, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "2")
        monkeypatch.setenv("REPRO_EXECUTOR", "processes")
        system = EILSystem(corpus.taxonomy, corpus.collection,
                           corpus.directory)
        assert system.workers == 2
        assert system.executor == "processes"
        monkeypatch.delenv("REPRO_WORKERS")
        monkeypatch.delenv("REPRO_EXECUTOR")
        system = EILSystem(corpus.taxonomy, corpus.collection,
                           corpus.directory)
        assert system.workers == 1
        assert system.executor == "threads"
