"""Tests for EILSystem configuration options and error paths."""

import pytest

from repro import CorpusConfig, CorpusGenerator, EILSystem, User
from repro.annotators import NaiveBayesClassifier
from repro.core import scope_query
from repro.errors import ProgrammingError

SALES = User("u", frozenset({"sales"}))


@pytest.fixture(scope="module")
def corpus():
    return CorpusGenerator(
        CorpusConfig(n_deals=4, docs_per_deal=16)
    ).generate()


class TestBuildOptions:
    def test_search_before_build_rejected(self, corpus):
        system = EILSystem(corpus.taxonomy, corpus.collection)
        with pytest.raises(RuntimeError):
            system.search(scope_query("WAN"), SALES)

    def test_scope_threshold_tightens_extraction(self, corpus):
        lenient = EILSystem.build(corpus, scope_min_weight=2.0)
        strict = EILSystem.build(corpus, scope_min_weight=12.0)
        lenient_towers = sum(
            len(lenient.synopsis(d, SALES).towers)
            for d in lenient.deal_ids()
        )
        strict_towers = sum(
            len(strict.synopsis(d, SALES).towers)
            for d in strict.deal_ids()
        )
        assert strict_towers < lenient_towers

    def test_classifier_based_strategy_annotator(self, corpus):
        classifier = NaiveBayesClassifier()
        classifier.train(
            [
                ("Strategy: price to win with credits.", "strategy"),
                ("Strategy: offshore delivery mix cost case.", "strategy"),
                ("Weekly status call held with stakeholders.", "other"),
                ("Travel arrangements were confirmed.", "other"),
            ]
        )
        system = EILSystem.build(corpus,
                                 strategy_classifier=classifier)
        # The classifier path still extracts strategies for most deals.
        with_strategies = sum(
            1 for d in system.deal_ids()
            if system.synopsis(d, SALES).win_strategies
        )
        assert with_strategies >= len(system.deal_ids()) // 2

    def test_unknown_synopsis_rejected(self, corpus):
        system = EILSystem.build(corpus)
        with pytest.raises(ProgrammingError):
            system.synopsis("ghost-deal", SALES)

    def test_field_boosts_configurable(self, corpus):
        system = EILSystem(
            corpus.taxonomy, corpus.collection,
            field_boosts={"title": 10.0},
        )
        assert system.engine.field_boosts["title"] == 10.0
