"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main

FAST = ["--deals", "3", "--docs", "15"]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_search_flags(self):
        args = build_parser().parse_args(
            ["search", "--tower", "WAN", "--limit", "3"]
        )
        assert args.command == "search"
        assert args.tower == "WAN"
        assert args.limit == 3

    def test_global_flags(self):
        args = build_parser().parse_args(
            ["--seed", "7", "--deals", "4", "demo"]
        )
        assert args.seed == 7
        assert args.deals == 4

    def test_graph_flags(self):
        args = build_parser().parse_args(
            ["graph", "--worked-with", "Sam White", "--limit", "2"]
        )
        assert args.command == "graph"
        assert args.worked_with == "Sam White"
        assert args.limit == 2

    def test_graph_traversals_are_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["graph", "--role", "CSE", "--expertise", "VPN"]
            )

    def test_graph_requires_a_traversal(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["graph"])


class TestCommands:
    def test_search_tower(self, capsys):
        code = main(FAST + ["search", "--tower", "Network Services"])
        assert code == 0
        out = capsys.readouterr().out
        assert "DEAL" in out or "No matching" in out

    def test_search_with_facets(self, capsys):
        code = main(FAST + ["search", "--tower", "Network Services",
                            "--facets"])
        assert code == 0
        out = capsys.readouterr().out
        if "DEAL" in out:
            assert "Refine by:" in out

    def test_study(self, capsys):
        code = main(FAST + ["study", "--threads", "24"])
        assert code == 0
        out = capsys.readouterr().out
        assert "threads: 24" in out
        assert "mq1" in out

    def test_build_snapshot(self, tmp_path, capsys):
        snapshot = tmp_path / "db.json"
        code = main(FAST + ["build", str(snapshot)])
        assert code == 0
        assert snapshot.exists()
        from repro.db import load_database

        restored = load_database(snapshot)
        assert restored.execute("SELECT COUNT(*) FROM deals").scalar() == 3

    def test_synopsis_by_name(self, capsys):
        code = main(FAST + ["synopsis", "DEAL A"])
        assert code == 0
        assert "Synopsis for DEAL A" in capsys.readouterr().out

    def test_synopsis_unknown_deal(self, capsys):
        code = main(FAST + ["synopsis", "DEAL ZZZ"])
        assert code == 1
        assert "known deals" in capsys.readouterr().err

    def test_demo_runs(self, capsys):
        code = main(FAST + ["demo"])
        assert code == 0
        out = capsys.readouterr().out
        assert "MQ1" in out and "MQ4" in out


class TestGraphCommand:
    def _first_person(self):
        from repro.corpus import CorpusConfig, CorpusGenerator

        corpus = CorpusGenerator(
            CorpusConfig(seed=2008, n_deals=3, docs_per_deal=15)
        ).generate()
        return corpus.deals[0].team[0].person.full_name

    def test_worked_with(self, capsys):
        person = self._first_person()
        code = main(FAST + ["graph", "--worked-with", person])
        assert code == 0
        out = capsys.readouterr().out
        assert "graph:worked-with" in out
        assert "colleagues:" in out
        assert "cites: contacts:" in out

    def test_role_capacity_canonicalizes(self, capsys):
        code = main(FAST + ["graph", "--role", "cross tower TSA"])
        assert code == 0
        out = capsys.readouterr().out
        assert ("canonical role: "
                "Cross Tower Technical Solution Architect") in out

    def test_unknown_person_exits_nonzero(self, capsys):
        code = main(FAST + ["graph", "--worked-with", "Zed Nobody"])
        assert code == 1
        assert "no person matching" in capsys.readouterr().out

    def test_json_answer_is_parseable(self, capsys):
        import json

        person = self._first_person()
        code = main(FAST + ["graph", "--worked-with", person,
                            "--limit", "2", "--json"])
        assert code == 0
        answer = json.loads(capsys.readouterr().out)
        assert set(answer) == {"query", "persons", "deals", "colleagues"}
        assert len(answer["colleagues"]) <= 2

    def test_graph_stats(self, capsys):
        code = main(FAST + ["graph", "--graph-stats"])
        assert code == 0
        out = capsys.readouterr().out
        assert "deals: 3" in out
        assert "node person:" in out
        assert "edge member_of:" in out

    def test_cold_start_from_index_dir(self, tmp_path, capsys):
        code = main(FAST + ["persist", str(tmp_path)])
        assert code == 0
        capsys.readouterr()
        code = main(FAST + ["graph", "--index-dir", str(tmp_path),
                            "--graph-stats", "--json"])
        assert code == 0
        import json

        stats = json.loads(capsys.readouterr().out)
        assert stats["deals"] == 3
