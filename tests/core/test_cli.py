"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main

FAST = ["--deals", "3", "--docs", "15"]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_search_flags(self):
        args = build_parser().parse_args(
            ["search", "--tower", "WAN", "--limit", "3"]
        )
        assert args.command == "search"
        assert args.tower == "WAN"
        assert args.limit == 3

    def test_global_flags(self):
        args = build_parser().parse_args(
            ["--seed", "7", "--deals", "4", "demo"]
        )
        assert args.seed == 7
        assert args.deals == 4


class TestCommands:
    def test_search_tower(self, capsys):
        code = main(FAST + ["search", "--tower", "Network Services"])
        assert code == 0
        out = capsys.readouterr().out
        assert "DEAL" in out or "No matching" in out

    def test_search_with_facets(self, capsys):
        code = main(FAST + ["search", "--tower", "Network Services",
                            "--facets"])
        assert code == 0
        out = capsys.readouterr().out
        if "DEAL" in out:
            assert "Refine by:" in out

    def test_study(self, capsys):
        code = main(FAST + ["study", "--threads", "24"])
        assert code == 0
        out = capsys.readouterr().out
        assert "threads: 24" in out
        assert "mq1" in out

    def test_build_snapshot(self, tmp_path, capsys):
        snapshot = tmp_path / "db.json"
        code = main(FAST + ["build", str(snapshot)])
        assert code == 0
        assert snapshot.exists()
        from repro.db import load_database

        restored = load_database(snapshot)
        assert restored.execute("SELECT COUNT(*) FROM deals").scalar() == 3

    def test_synopsis_by_name(self, capsys):
        code = main(FAST + ["synopsis", "DEAL A"])
        assert code == 0
        assert "Synopsis for DEAL A" in capsys.readouterr().out

    def test_synopsis_unknown_deal(self, capsys):
        code = main(FAST + ["synopsis", "DEAL ZZZ"])
        assert code == 1
        assert "known deals" in capsys.readouterr().err

    def test_demo_runs(self, capsys):
        code = main(FAST + ["demo"])
        assert code == 0
        out = capsys.readouterr().out
        assert "MQ1" in out and "MQ4" in out
