"""Unit tests for the organized-information layer."""

import pytest

from repro.annotators import ContactRecord, ScopeEntry
from repro.core import OrganizedInformation
from repro.errors import IntegrityError


@pytest.fixture
def organized():
    info = OrganizedInformation()
    info.store_deal_context(
        "d1",
        {
            "Deal Name": "DEAL A",
            "Customer": "ABC",
            "Industry": "Insurance",
            "Out Sourcing Consultant": "TPI",
            "Contract Term Start": "2006-01-05",
            "Term Duration Months": "60",
            "Total Contract Value": "50 to 100M",
            "International": "Y",
        },
    )
    info.store_scopes(
        "d1",
        [
            ScopeEntry("Customer Service Center", "End User Services",
                       12.0, 4),
            ScopeEntry("WAN", "Network Services", 6.0, 2),
        ],
    )
    info.store_contacts(
        "d1",
        [
            ContactRecord("d1", "Sam White", "sam.white@abc.com",
                          "+1-914-555-0001", "ABC",
                          "Client Solution Executive", "core deal team",
                          mention_count=3, validated=True),
        ],
    )
    info.store_win_strategies("d1", ["price to win"])
    info.store_technologies("d1", [("data replication",
                                    "Storage Management Services")])
    info.store_client_references("d1", ["similar Insurance engagement"])
    return info


class TestPopulation:
    def test_deal_row(self, organized):
        row = organized.deal_row("d1")
        assert row["name"] == "DEAL A"
        assert row["term_months"] == 60
        assert row["international"] is True
        assert str(row["contract_start"]) == "2006-01-05"

    def test_missing_deal_row(self, organized):
        assert organized.deal_row("nope") is None

    def test_scopes_ordered_by_rank(self, organized):
        scopes = organized.scopes_of("d1")
        assert [s["canonical"] for s in scopes] == [
            "Customer Service Center", "WAN",
        ]
        assert scopes[0]["rank"] == 0

    def test_contacts(self, organized):
        contacts = organized.contacts_of("d1")
        assert contacts[0]["name"] == "Sam White"
        assert contacts[0]["validated"] is True

    def test_lists(self, organized):
        assert organized.strategies_of("d1") == ["price to win"]
        assert organized.references_of("d1") == [
            "similar Insurance engagement"
        ]
        assert organized.technologies_of("d1")[0]["term"] == (
            "data replication"
        )

    def test_deal_ids(self, organized):
        assert organized.deal_ids() == ["d1"]

    def test_fk_enforced_on_children(self, organized):
        with pytest.raises(IntegrityError):
            organized.store_scopes(
                "ghost", [ScopeEntry("WAN", "Network Services", 5.0, 1)]
            )

    def test_sparse_context_allowed(self, organized):
        # Badly-maintained repositories leave fields empty.
        organized.store_deal_context("d2", {})
        row = organized.deal_row("d2")
        assert row["name"] == "d2"
        assert row["customer"] is None
