"""Unit tests for renderers and meta-query builders."""

from repro.core import (
    ActivityResult,
    DealSynopsis,
    EilResults,
    render_deal_list,
    render_results,
    render_synopsis,
    role_capacity_query,
    scope_query,
    service_keyword_query,
    worked_with_query,
)
from repro.core.context import ContactView
from repro.search import IndexableDocument, SearchHit


def make_synopsis():
    return DealSynopsis(
        deal_id="d1",
        name="DEAL C",
        overview={
            "Deal name": "DEAL C",
            "Customer name": "C",
            "Industry": "Insurance",
            "Out Sourcing Consultant": "TPI",
            "Contract Term Start": "2006-01-05",
            "Term Duration (months)": "60",
            "Total Contract Value": "50 to 100M",
            "Is International?": "Y",
        },
        towers=["Customer Service Center", "Procurement Services"],
        people={
            "core deal team": [
                ContactView("Sam White", "Client Solution Executive",
                            "core deal team", "sam.white@abc.com",
                            "+1-914-555-0001", "ABC", True, True),
            ],
            "client team": [
                ContactView("Jane Doe", "Chief Information Officer",
                            "client team", "", "", "C", False, False),
            ],
        },
        win_strategies=["price to win"],
        client_references=["similar Insurance engagement"],
        technology_solutions=[
            {"term": "call routing", "tower": "Customer Service Center"},
        ],
    )


class TestRenderSynopsis:
    def test_figure6_fields_present(self):
        text = render_synopsis(make_synopsis())
        # The Figure 6 synopsis fields, as rendered.
        assert "Synopsis for DEAL C" in text
        assert "Customer name: C" in text
        assert "Out Sourcing Consultant: TPI" in text
        assert "Term Duration (months): 60" in text
        assert "Total Contract Value: 50 to 100M" in text
        assert "Is International?: Y" in text
        assert "Customer Service Center, Procurement Services" in text

    def test_people_grouped_by_category(self):
        text = render_synopsis(make_synopsis())
        assert "core deal team:" in text
        assert "client team:" in text
        assert "Sam White" in text

    def test_inactive_contact_flagged(self):
        text = render_synopsis(make_synopsis())
        assert "Jane Doe" in text
        assert "(no longer active)" in text

    def test_tabs_rendered(self):
        text = render_synopsis(make_synopsis())
        for tab in ("[Overview]", "[People]", "[Win Strategies]",
                    "[Client References]", "[Technology Solutions]"):
            assert tab in text


class TestRenderDealList:
    def test_figure5_shape(self):
        text = render_deal_list([make_synopsis()])
        assert text.startswith("DEAL C")
        # Towers ordered by significance, then context extras.
        assert "Customer Service Center, Procurement Services" in text
        assert "TPI" in text and "Insurance" in text

    def test_empty_scope_placeholder(self):
        synopsis = make_synopsis()
        synopsis.towers = []
        assert "(no extracted scope)" in render_deal_list([synopsis])


class TestRenderResults:
    def make_results(self, with_documents=True, withheld=False):
        hits = []
        if with_documents:
            hits = [SearchHit(
                "doc1", 2.0,
                IndexableDocument("doc1", {"title": "Delay file",
                                           "body": "data replication"},
                                  {"deal_id": "d1"}),
                snippet="data replication RTO lower than 48 hours",
            )]
        activity = ActivityResult(
            deal_id="d1", name="DEAL A", score=0.8,
            synopsis_score=0.9, siapi_score=0.7,
            reasons=["tower=Storage Management Services"],
            documents=[] if withheld else hits,
            documents_withheld=withheld and bool(hits),
        )
        return EilResults(activities=[activity], scoped=True)

    def test_figure9_layout(self):
        text = render_results(self.make_results())
        assert "DEAL A" in text
        assert "%" in text  # normalized document score
        assert "Delay file" in text
        assert "data replication" in text

    def test_withheld_documents_notice(self):
        text = render_results(self.make_results(withheld=True))
        assert "withheld" in text
        assert "People tab" in text

    def test_empty(self):
        assert render_results(EilResults()) == (
            "No matching business activities."
        )

    def test_scores_normalized_to_best(self):
        text = render_results(self.make_results())
        assert "100.00%" in text  # single hit = the best hit


class TestMetaQueryBuilders:
    def test_scope_query(self):
        form = scope_query("End User Services")
        assert form.tower == "End User Services"
        assert not form.has_text_criteria()

    def test_worked_with_query(self):
        form = worked_with_query("Sam White", "ABC")
        assert form.person_name == "Sam White"
        assert form.organization == "ABC"

    def test_role_capacity_query(self):
        assert role_capacity_query("cross tower TSA").role == (
            "cross tower TSA"
        )

    def test_service_keyword_query_ewb(self):
        form = service_keyword_query("WAN", "MPLS routing")
        assert form.tower == "WAN"
        assert form.exact_phrase == "MPLS routing"
        assert form.search_in == "ewb"
        assert form.to_siapi_query() is not None

    def test_service_keyword_query_synopsis(self):
        form = service_keyword_query("WAN", "MPLS routing",
                                     in_synopsis=True)
        assert form.search_in == "synopsis"
        assert form.to_siapi_query() is None


class TestFormQueryDescribe:
    """The Figure 8 footer: a natural-language echo of the form."""

    def test_figure8_example(self):
        from repro.core import FormQuery

        form = FormQuery(tower="Storage Management Services",
                         exact_phrase="data replication")
        text = form.describe()
        assert text == (
            "Find deals with Storage Management Services tower; "
            'contain "data replication" anywhere in EWB'
        )

    def test_people_criteria(self):
        from repro.core import FormQuery

        form = FormQuery(person_name="Sam White", organization="ABC",
                         role="CSE")
        assert form.describe() == (
            "Find deals involving Sam White of ABC as CSE"
        )

    def test_synopsis_scope_wording(self):
        from repro.core import FormQuery

        form = FormQuery(all_words="replication", search_in="synopsis")
        assert "in the deal synopsis" in form.describe()

    def test_empty_form(self):
        from repro.core import FormQuery

        assert FormQuery().describe() == "Find all deals"
