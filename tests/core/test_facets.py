"""Unit tests for facet counts (the Figure 8 form dropdowns)."""

import pytest

from repro.annotators import ContactRecord, ScopeEntry
from repro.core import FACET_NAMES, FacetService, OrganizedInformation


@pytest.fixture
def facets():
    info = OrganizedInformation()
    for deal_id, industry, consultant in (
        ("d1", "Insurance", "TPI"),
        ("d2", "Insurance", ""),
        ("d3", "Banking", "TPI"),
    ):
        info.store_deal_context(deal_id, {
            "Deal Name": deal_id.upper(),
            "Industry": industry,
            "Out Sourcing Consultant": consultant,
            "Total Contract Value": "over 100M",
        })
    info.store_scopes("d1", [
        ScopeEntry("WAN", "Network Services", 9.0, 3),
        ScopeEntry("LAN", "Network Services", 5.0, 2),
    ])
    info.store_scopes("d2", [ScopeEntry("WAN", "Network Services", 7.0, 2)])
    info.store_contacts("d1", [
        ContactRecord("d1", "A B", role="Client Solution Executive",
                      category="core deal team"),
        ContactRecord("d1", "C D", role="Pricer",
                      category="core deal team"),
    ])
    info.store_contacts("d3", [
        ContactRecord("d3", "E F", role="Client Solution Executive",
                      category="core deal team"),
    ])
    return FacetService(info)


class TestFacets:
    def test_industry_counts(self, facets):
        assert facets.facet("industry") == [("Banking", 1), ("Insurance", 2)][::-1]

    def test_empty_values_excluded(self, facets):
        consultant = dict(facets.facet("consultant"))
        assert consultant == {"TPI": 2}

    def test_tower_counts_deals_not_mentions(self, facets):
        tower = dict(facets.facet("tower"))
        assert tower["WAN"] == 2
        assert tower["LAN"] == 1

    def test_role_counts_distinct_deals(self, facets):
        role = dict(facets.facet("role"))
        assert role["Client Solution Executive"] == 2
        assert role["Pricer"] == 1

    def test_scoped_to_result_set(self, facets):
        scoped = facets.facets(deal_ids=["d1"])
        assert dict(scoped["industry"]) == {"Insurance": 1}
        assert dict(scoped["tower"]) == {"WAN": 1, "LAN": 1}

    def test_sorted_by_count_then_value(self, facets):
        values = facets.facet("tower")
        counts = [count for _, count in values]
        assert counts == sorted(counts, reverse=True)

    def test_unknown_facet_rejected(self, facets):
        with pytest.raises(KeyError):
            facets.facet("nope")

    def test_all_facet_names_computable(self, facets):
        everything = facets.facets()
        assert set(everything) == set(FACET_NAMES)

    def test_value_band_facet(self, facets):
        assert dict(facets.facet("value_band")) == {"over 100M": 3}
