"""Online query-result cache: hits, invalidation, access isolation."""

import pytest

from repro import CorpusConfig, CorpusGenerator, EILSystem, User, obs
from repro.core import scope_query
from repro.core.metaqueries import service_keyword_query
from repro.corpus import DealGenerator, WorkbookFactory

SALES = User("u", frozenset({"sales"}))


@pytest.fixture
def registry():
    with obs.use_registry() as fresh:
        yield fresh


@pytest.fixture(scope="module")
def corpus():
    return CorpusGenerator(
        CorpusConfig(n_deals=4, docs_per_deal=14)
    ).generate()


@pytest.fixture
def eil(corpus, registry):
    return EILSystem.build(corpus)


@pytest.fixture
def extra_workbook(corpus):
    generator = DealGenerator(seed=999, taxonomy=corpus.taxonomy)
    new_deal = generator.generate(5)[4]
    return WorkbookFactory(corpus.taxonomy, seed=999).build_workbook(
        new_deal, 14
    )


def _hits(registry):
    counter = registry.counters.get("query.cache.hits")
    return counter.value if counter else 0


class TestQueryCacheHits:
    def test_repeat_query_hits_cache(self, eil, registry):
        form = scope_query("End User Services")
        first = eil.search(form, SALES)
        assert _hits(registry) == 0
        second = eil.search(form, SALES)
        assert _hits(registry) == 1
        assert second.deal_ids == first.deal_ids
        assert second.plan == first.plan

    def test_whitespace_variants_share_an_entry(self, eil, registry):
        eil.search(scope_query("End User Services"), SALES)
        eil.search(scope_query("  End User Services  "), SALES)
        assert _hits(registry) == 1

    def test_different_limits_are_distinct_entries(self, eil, registry):
        form = scope_query("End User Services")
        eil.search(form, SALES, limit=1)
        eil.search(form, SALES, limit=2)
        assert _hits(registry) == 0

    def test_cached_results_are_mutation_safe(self, eil, registry):
        form = scope_query("End User Services")
        first = eil.search(form, SALES)
        first.activities.clear()
        first.plan.append("tampered")
        second = eil.search(form, SALES)
        assert second.activities
        assert "tampered" not in second.plan


class TestQueryCacheInvalidation:
    def test_add_workbook_invalidates(self, eil, registry, extra_workbook):
        form = scope_query("End User Services")
        eil.search(form, SALES)
        eil.add_workbook(extra_workbook)
        eil.search(form, SALES)
        assert _hits(registry) == 0

    def test_remove_deal_invalidates(self, eil, registry, corpus):
        form = scope_query("End User Services")
        before = eil.search(form, SALES)
        victim = (before.deal_ids or [corpus.deals[0].deal_id])[0]
        eil.remove_deal(victim)
        after = eil.search(form, SALES)
        assert _hits(registry) == 0
        assert victim not in after.deal_ids

    def test_engine_cache_hit_and_invalidation(self, eil, registry):
        eil.keyword_search("end user services")
        eil.keyword_search("end user services")
        assert registry.counters["engine.cache.hits"].value == 1
        doc_id = next(iter(eil.engine.index.doc_ids))
        eil.engine.remove(doc_id)
        eil.keyword_search("end user services")
        assert registry.counters["engine.cache.hits"].value == 1


class TestQueryCacheAccessIsolation:
    def test_no_cross_user_leakage(self, corpus, registry):
        """A restricted user must never see another user's cached docs."""
        eil = EILSystem.build(corpus)
        allowed = User("alice", frozenset({"sales"}))
        denied = User("bob", frozenset({"ops"}))
        # Restrict every repository to the sales role.
        for workbook in corpus.collection:
            eil.access.grant_role(workbook.name, "sales")
        form = service_keyword_query("Storage Management Services",
                                     "data replication")
        rich = eil.search(form, allowed)
        poor = eil.search(form, denied)
        assert rich.deal_ids == poor.deal_ids
        # The allowed user's view carries document hits; the denied
        # user's cached-adjacent view must not leak them.
        assert any(a.documents for a in rich.activities)
        for activity in poor.activities:
            assert activity.documents == []
        assert any(a.documents_withheld for a in poor.activities)

    def test_policy_change_invalidates(self, corpus, registry):
        eil = EILSystem.build(corpus)
        user = User("carol", frozenset({"ops"}))
        form = service_keyword_query("Storage Management Services",
                                     "data replication")
        first = eil.search(form, user)
        docs_before = sum(len(a.documents) for a in first.activities)
        for workbook in corpus.collection:
            eil.access.restrict(workbook.name)
        second = eil.search(form, user)
        assert _hits(registry) == 0  # policy bump forced a recompute
        assert sum(len(a.documents) for a in second.activities) <= docs_before
        for activity in second.activities:
            assert activity.documents == []
