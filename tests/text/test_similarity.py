"""Unit and property tests for string-similarity measures."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.text import (
    jaro,
    jaro_winkler,
    levenshtein,
    levenshtein_ratio,
    token_set_ratio,
)

short_text = st.text(max_size=24)


class TestLevenshtein:
    def test_identical(self):
        assert levenshtein("white", "white") == 0

    def test_single_substitution(self):
        assert levenshtein("white", "whita") == 1

    def test_insert_delete(self):
        assert levenshtein("white", "whiter") == 1
        assert levenshtein("whiter", "white") == 1

    def test_empty_strings(self):
        assert levenshtein("", "abc") == 3
        assert levenshtein("abc", "") == 3
        assert levenshtein("", "") == 0

    def test_classic_example(self):
        assert levenshtein("kitten", "sitting") == 3

    def test_ratio_bounds(self):
        assert levenshtein_ratio("same", "same") == 1.0
        assert levenshtein_ratio("", "") == 1.0
        assert levenshtein_ratio("abc", "xyz") == 0.0

    @given(short_text, short_text)
    def test_symmetry(self, a, b):
        assert levenshtein(a, b) == levenshtein(b, a)

    @given(short_text, short_text)
    def test_bounded_by_longer_length(self, a, b):
        assert levenshtein(a, b) <= max(len(a), len(b))

    @given(short_text, short_text, short_text)
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)

    @given(short_text, short_text)
    def test_zero_iff_equal(self, a, b):
        assert (levenshtein(a, b) == 0) == (a == b)


class TestJaro:
    def test_identical(self):
        assert jaro("martha", "martha") == 1.0

    def test_known_value(self):
        assert jaro("martha", "marhta") == pytest.approx(0.944444, abs=1e-5)

    def test_disjoint(self):
        assert jaro("abc", "xyz") == 0.0

    def test_empty(self):
        assert jaro("", "abc") == 0.0

    @given(short_text, short_text)
    def test_symmetry_and_bounds(self, a, b):
        value = jaro(a, b)
        assert 0.0 <= value <= 1.0
        assert value == pytest.approx(jaro(b, a))


class TestJaroWinkler:
    def test_prefix_boost(self):
        assert jaro_winkler("dixon", "dicksonx") > jaro("dixon", "dicksonx")

    def test_known_value(self):
        assert jaro_winkler("dwayne", "duane") == pytest.approx(0.84, abs=0.01)

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            jaro_winkler("a", "b", prefix_scale=0.5)

    @given(short_text, short_text)
    def test_bounds(self, a, b):
        assert 0.0 <= jaro_winkler(a, b) <= 1.0

    @given(short_text, short_text)
    def test_at_least_jaro(self, a, b):
        assert jaro_winkler(a, b) >= jaro(a, b) - 1e-12


class TestTokenSetRatio:
    def test_order_insensitive(self):
        assert token_set_ratio(["Sam", "White"], ["white", "sam"]) == 1.0

    def test_partial_overlap(self):
        assert token_set_ratio(["a", "b"], ["b", "c"]) == pytest.approx(1 / 3)

    def test_both_empty(self):
        assert token_set_ratio([], []) == 1.0

    def test_one_empty(self):
        assert token_set_ratio(["a"], []) == 0.0
