"""Unit tests for the offset-preserving tokenizer."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.text import Token, Tokenizer, split_sentences, tokenize


class TestToken:
    def test_span_length(self):
        token = Token("deal", 10, 14)
        assert len(token) == 4

    def test_lower(self):
        assert Token("CSE", 0, 3).lower == "cse"

    def test_invalid_span_rejected(self):
        with pytest.raises(ValueError):
            Token("x", 5, 3)
        with pytest.raises(ValueError):
            Token("x", -1, 0)


class TestTokenizer:
    def test_basic_words(self):
        tokens = tokenize("Storage Management Services")
        assert [t.text for t in tokens] == ["Storage", "Management", "Services"]

    def test_offsets_point_into_source(self):
        text = "Deal C is a Customer Service Center engagement."
        for token in tokenize(text):
            assert text[token.start:token.end] == token.text

    def test_apostrophes_kept_internal(self):
        tokens = tokenize("client's requirements don't change")
        assert "client's" in [t.text for t in tokens]
        assert "don't" in [t.text for t in tokens]

    def test_acronym_with_periods(self):
        tokens = tokenize("based in the U.S.A. today")
        assert "U.S.A" in [t.text for t in tokens]

    def test_ampersand_company_names(self):
        assert [t.text for t in tokenize("AT&T contract")] == ["AT&T", "contract"]

    def test_numbers_tokenized(self):
        tokens = tokenize("contract value 100M over 60 months")
        assert "100M" in [t.text for t in tokens]
        assert "60" in [t.text for t in tokens]

    def test_lowercase_option(self):
        tokens = Tokenizer(lowercase=True).tokenize("End User Services")
        assert [t.text for t in tokens] == ["end", "user", "services"]

    def test_min_length_filter(self):
        tokens = Tokenizer(min_length=3).tokenize("an IT deal of scope")
        assert [t.text for t in tokens] == ["deal", "scope"]

    def test_min_length_validation(self):
        with pytest.raises(ValueError):
            Tokenizer(min_length=0)

    def test_empty_text(self):
        assert tokenize("") == []

    def test_punctuation_only(self):
        assert tokenize("--- *** !!!") == []

    @given(st.text(max_size=200))
    def test_offsets_always_consistent(self, text):
        for token in tokenize(text):
            assert text[token.start:token.end] == token.text

    @given(st.text(max_size=200))
    def test_tokens_in_document_order(self, text):
        tokens = tokenize(text)
        for left, right in zip(tokens, tokens[1:]):
            assert left.end <= right.start


class TestSentenceSplitting:
    def test_simple_split(self):
        sents = split_sentences("The deal closed. The team moved on.")
        assert sents == ["The deal closed.", "The team moved on."]

    def test_paragraph_breaks(self):
        sents = split_sentences("Win strategy\n\nPricing approach")
        assert sents == ["Win strategy", "Pricing approach"]

    def test_no_split_inside_abbreviation_lowercase(self):
        # No boundary because next char is lowercase.
        sents = split_sentences("approx. value of the deal")
        assert len(sents) == 1

    def test_empty(self):
        assert split_sentences("") == []

    def test_question_and_exclamation(self):
        sents = split_sentences("Who is the CSE? Find out! Now.")
        assert len(sents) == 3
