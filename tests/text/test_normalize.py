"""Unit tests for field normalization (paper Fig. 3 steps 6 and 12)."""

import pytest

from repro.text import (
    name_key,
    normalize_email,
    normalize_person_name,
    normalize_phone,
    normalize_role,
    normalize_whitespace,
    person_from_email,
)


class TestWhitespace:
    def test_collapses_runs(self):
        assert normalize_whitespace("  a \t b\n c  ") == "a b c"

    def test_empty(self):
        assert normalize_whitespace("   ") == ""


class TestPersonName:
    def test_last_first_order(self):
        assert normalize_person_name("White, Sam") == "Sam White"

    def test_case_folding(self):
        assert normalize_person_name("sam WHITE") == "Sam White"

    def test_honorific_stripped(self):
        assert normalize_person_name("Mr. Sam White") == "Sam White"
        assert normalize_person_name("Dr Jane Doe") == "Jane Doe"

    def test_middle_initial_preserved(self):
        assert normalize_person_name("sam j. white") == "Sam J. White"

    def test_hyphenated_surname(self):
        assert normalize_person_name("anne smith-jones") == "Anne Smith-Jones"

    def test_name_key_order_insensitive(self):
        assert name_key("White, Sam") == name_key("sam white")

    def test_name_key_distinguishes_people(self):
        assert name_key("Sam White") != name_key("Sam Black")


class TestPhone:
    def test_us_ten_digit(self):
        assert normalize_phone("(914) 555-0143") == "+1-914-555-0143"

    def test_us_eleven_digit(self):
        assert normalize_phone("1-914-555-0143") == "+1-914-555-0143"

    def test_already_normalized(self):
        assert normalize_phone("+1-914-555-0143") == "+1-914-555-0143"

    def test_international_passthrough(self):
        assert normalize_phone("+44 20 7946 0958") == "+442079460958"

    def test_rejects_noise(self):
        assert normalize_phone("page 3") is None
        assert normalize_phone("no digits here") is None

    def test_rejects_overlong(self):
        assert normalize_phone("1" * 20) is None


class TestEmail:
    def test_lowercase_and_strip(self):
        assert normalize_email(" <Sam.White@ABC.com>, ") == "sam.white@abc.com"


class TestRole:
    def test_acronym_expansion(self):
        assert normalize_role("CSE") == "Client Solution Executive"
        assert normalize_role("cross tower TSA") == (
            "Cross Tower Technical Solution Architect"
        )

    def test_trailing_period(self):
        assert normalize_role("Client Solution Exec.") == (
            "Client Solution Executive"
        )

    def test_unknown_role_title_cased(self):
        assert normalize_role("bid manager") == "Bid Manager"

    def test_sourcing_consultant_maps_to_third_party(self):
        assert normalize_role("sourcing consultant") == "Third Party Consultant"


class TestPersonFromEmail:
    def test_corporate_convention(self):
        assert person_from_email("sam.white@abc.com") == ("Sam White", "ABC")

    def test_underscore_separator(self):
        assert person_from_email("jane_doe@megacorp.com") == (
            "Jane Doe",
            "Megacorp",
        )

    def test_trailing_digits_allowed(self):
        assert person_from_email("sam.white2@abc.com") == ("Sam White", "ABC")

    def test_nonconforming_local_part(self):
        assert person_from_email("jsmith42@abc.com") is None

    def test_no_domain(self):
        assert person_from_email("not-an-email") is None

    @pytest.mark.parametrize(
        "email,org",
        [("a.b@ibm.com", "IBM"), ("a.b@initech.com", "Initech")],
    )
    def test_short_domains_uppercased(self, email, org):
        assert person_from_email(email)[1] == org
