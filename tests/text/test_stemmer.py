"""Unit and property tests for the Porter stemmer."""

from hypothesis import given
from hypothesis import strategies as st

from repro.text import PorterStemmer, stem

# Representative vocabulary -> expected stems, taken from the Porter
# paper's worked examples plus domain terms used heavily in the corpus.
KNOWN_STEMS = {
    "caresses": "caress",
    "ponies": "poni",
    "ties": "ti",
    "caress": "caress",
    "cats": "cat",
    "feed": "feed",
    "agreed": "agre",
    "plastered": "plaster",
    "bled": "bled",
    "motoring": "motor",
    "sing": "sing",
    "conflated": "conflat",
    "troubled": "troubl",
    "sized": "size",
    "hopping": "hop",
    "tanned": "tan",
    "falling": "fall",
    "hissing": "hiss",
    "fizzed": "fizz",
    "failing": "fail",
    "filing": "file",
    "happy": "happi",
    "sky": "sky",
    "relational": "relat",
    "conditional": "condit",
    "rational": "ration",
    "valenci": "valenc",
    "digitizer": "digit",
    "operator": "oper",
    "feudalism": "feudal",
    "decisiveness": "decis",
    "hopefulness": "hope",
    "callousness": "callous",
    "formaliti": "formal",
    "sensitiviti": "sensit",
    "sensibiliti": "sensibl",
    "triplicate": "triplic",
    "formative": "form",
    "formalize": "formal",
    "electriciti": "electr",
    "electrical": "electr",
    "hopeful": "hope",
    "goodness": "good",
    "revival": "reviv",
    "allowance": "allow",
    "inference": "infer",
    "airliner": "airlin",
    "gyroscopic": "gyroscop",
    "adjustable": "adjust",
    "defensible": "defens",
    "irritant": "irrit",
    "replacement": "replac",
    "adjustment": "adjust",
    "dependent": "depend",
    "adoption": "adopt",
    "homologou": "homolog",
    "communism": "commun",
    "activate": "activ",
    "angulariti": "angular",
    "homologous": "homolog",
    "effective": "effect",
    "bowdlerize": "bowdler",
    "probate": "probat",
    "rate": "rate",
    "cease": "ceas",
    "controll": "control",
    "roll": "roll",
    # Domain terms: these must collide the way the keyword baseline needs.
    "services": "servic",
    "service": "servic",
    "servicing": "servic",
    "engagements": "engag",
    "engagement": "engag",
    "replication": "replic",
    "replicated": "replic",
}


class TestKnownStems:
    def test_porter_paper_examples(self):
        stemmer = PorterStemmer()
        failures = {
            word: (stemmer.stem(word), expected)
            for word, expected in KNOWN_STEMS.items()
            if stemmer.stem(word) != expected
        }
        assert not failures

    def test_domain_terms_collide(self):
        assert stem("services") == stem("service") == stem("servicing")
        assert stem("engagements") == stem("engagement")
        assert stem("replication") == stem("replicated")

    def test_short_words_untouched(self):
        assert stem("it") == "it"
        assert stem("a") == "a"
        assert stem("go") == "go"

    def test_module_function_case_folds(self):
        assert stem("Services") == stem("services")


class TestStemmerProperties:
    @given(st.text(alphabet=st.characters(min_codepoint=97, max_codepoint=122),
                   min_size=0, max_size=30))
    def test_never_longer_than_input(self, word):
        assert len(stem(word)) <= len(word)

    @given(st.text(alphabet=st.characters(min_codepoint=97, max_codepoint=122),
                   min_size=0, max_size=30))
    def test_idempotent_for_search_use(self, word):
        # Stemming an already-stemmed term may reduce it further in rare
        # Porter cases, but a second application must be stable (the index
        # and the query apply the stemmer exactly once each, to the same
        # surface form, so what matters is determinism).
        assert stem(word) == stem(word)

    @given(st.text(alphabet=st.characters(min_codepoint=97, max_codepoint=122),
                   min_size=3, max_size=30))
    def test_output_is_lowercase_alpha(self, word):
        result = stem(word)
        assert result == result.lower()
