"""Unit tests for the entity-graph data model (repro.graph.model)."""

import pytest

from repro.core.metaqueries import (
    GRAPH_QUERY_KINDS,
    GraphQuery,
    graph_expertise_query,
    graph_role_capacity_query,
    graph_team_overlap_query,
    graph_worked_with_query,
)
from repro.graph.model import (
    DEAL,
    MEMBER_OF,
    PERSON,
    Edge,
    NodeRef,
    Provenance,
    person_key,
)


class TestPersonKey:
    def test_email_is_the_strongest_identity(self):
        assert person_key("Sam White", "Sam.White@ABC.com ") == (
            "email:sam.white@abc.com"
        )

    def test_name_key_fallback_is_order_insensitive(self):
        assert person_key("Sam White") == person_key("White, Sam")
        assert person_key("Sam White").startswith("name:")

    def test_nothing_to_key_returns_none(self):
        assert person_key("") is None
        assert person_key("", "") is None

    def test_mirrors_contact_rollup_dedup_key(self):
        """The equivalence guarantee hinges on this exact parity."""
        from repro.annotators.social import ContactRecord, ContactRollup

        cases = [
            ("Sam White", "sam.white@abc.com"),
            ("White, Sam", ""),
            ("", "anon@abc.com"),
        ]
        for name, email in cases:
            record = ContactRecord(deal_id="d", name=name, email=email)
            assert person_key(name, email) == (
                ContactRollup._dedup_key(record)
            )


class TestNodeRefAndProvenance:
    def test_refs_are_hashable_and_ordered(self):
        a = NodeRef(PERSON, "email:a@x.com")
        b = NodeRef(PERSON, "email:b@x.com")
        assert a == NodeRef(PERSON, "email:a@x.com")
        assert sorted([b, a]) == [a, b]
        assert len({a, NodeRef(PERSON, "email:a@x.com")}) == 1

    def test_cite_names_table_and_row(self):
        assert Provenance("contacts", "17").cite() == "contacts:17"


class TestEdge:
    def _edge(self):
        return Edge(
            kind=MEMBER_OF,
            source=NodeRef(PERSON, "email:a@x.com"),
            target=NodeRef(DEAL, "deal-1"),
            deal_id="deal-1",
            provenance=Provenance("contacts", "3"),
            attrs={"name": "Ann", "role": "Pricer"},
        )

    def test_round_trips_through_dict(self):
        edge = self._edge()
        clone = Edge.from_dict(edge.to_dict())
        assert clone.to_dict() == edge.to_dict()
        assert clone.sort_key() == edge.sort_key()

    def test_sort_key_orders_by_deal_kind_and_row(self):
        a, b, c = self._edge(), self._edge(), self._edge()
        b.provenance = Provenance("contacts", "1")
        c.deal_id = "deal-0"
        first = sorted([a, b, c], key=Edge.sort_key)
        second = sorted([c, a, b], key=Edge.sort_key)
        assert [e.to_dict() for e in first] == [
            e.to_dict() for e in second
        ]
        assert first[0].deal_id == "deal-0"


class TestGraphQuery:
    def test_valid_kinds(self):
        for kind in GRAPH_QUERY_KINDS:
            assert GraphQuery(kind, "x").kind == kind

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown graph query"):
            GraphQuery("pagerank", "x")

    def test_builders_map_to_kinds(self):
        assert graph_worked_with_query("p").kind == "worked-with"
        assert graph_role_capacity_query("r").kind == "role-capacity"
        assert graph_expertise_query("t").kind == "expertise"
        assert graph_team_overlap_query("p").kind == "team-overlap"
        assert graph_worked_with_query("p", limit=3).limit == 3

    def test_describe_names_kind_and_subject(self):
        assert "worked-with" in graph_worked_with_query("Sam").describe()
        assert "Sam" in graph_worked_with_query("Sam").describe()
