"""Entity-graph persistence: bit-identity, damage detection, legacy dirs.

The storage contract mirrors the segment store's: canonical
serialization (save → load → save is byte-identical), checksum
verification on load, and back-compat — a pre-graph ``persist``
directory (no graph.json) still cold-starts, rebuilding the graph from
the synopsis database.
"""

import json
import os

import pytest

from repro import CorpusConfig, CorpusGenerator, EILSystem
from repro.errors import StorageError
from repro.graph import EntityGraph


@pytest.fixture(scope="module")
def world():
    corpus = CorpusGenerator(
        CorpusConfig(seed=2008, n_deals=4, docs_per_deal=12)
    ).generate()
    return corpus, EILSystem.build(corpus)


class TestBitIdentity:
    def test_save_load_save_is_byte_identical(self, world, tmp_path):
        _, eil = world
        first = tmp_path / "g1.json"
        second = tmp_path / "g2.json"
        eil.graph.save(str(first))
        EntityGraph.load(str(first)).save(str(second))
        assert first.read_bytes() == second.read_bytes()

    def test_loaded_graph_answers_identically(self, world, tmp_path):
        corpus, eil = world
        path = tmp_path / "g.json"
        eil.graph.save(str(path))
        loaded = EntityGraph.load(str(path))
        person = corpus.deals[0].team[0].person.full_name
        import dataclasses

        assert dataclasses.asdict(loaded.worked_with(person)) == (
            dataclasses.asdict(eil.graph.worked_with(person))
        )
        assert loaded.stats()["edges"] == eil.graph.stats()["edges"]

    def test_document_shape(self, world, tmp_path):
        _, eil = world
        path = tmp_path / "g.json"
        eil.graph.save(str(path))
        document = json.loads(path.read_text())
        assert document["format"] == "repro-entity-graph"
        assert document["version"] == 1
        assert "checksum" in document
        assert set(document["graph"]) == {"deals", "edges"}


class TestDamageDetection:
    def _saved(self, world, tmp_path):
        _, eil = world
        path = tmp_path / "g.json"
        eil.graph.save(str(path))
        return path

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(StorageError, match="cannot read"):
            EntityGraph.load(str(tmp_path / "absent.json"))

    def test_garbage_raises(self, tmp_path):
        path = tmp_path / "g.json"
        path.write_text("not json {")
        with pytest.raises(StorageError, match="invalid"):
            EntityGraph.load(str(path))

    def test_foreign_format_raises(self, tmp_path):
        path = tmp_path / "g.json"
        path.write_text('{"format": "other", "graph": {}}')
        with pytest.raises(StorageError, match="not an entity-graph"):
            EntityGraph.load(str(path))

    def test_future_version_raises(self, world, tmp_path):
        path = self._saved(world, tmp_path)
        document = json.loads(path.read_text())
        document["version"] = 99
        path.write_text(json.dumps(document))
        with pytest.raises(StorageError, match="version"):
            EntityGraph.load(str(path))

    def test_corrupted_payload_fails_checksum(self, world, tmp_path):
        path = self._saved(world, tmp_path)
        document = json.loads(path.read_text())
        document["graph"]["edges"][0]["deal_id"] = "tampered"
        path.write_text(json.dumps(document))
        with pytest.raises(StorageError, match="checksum"):
            EntityGraph.load(str(path))

    def test_verify_false_skips_the_checksum(self, world, tmp_path):
        path = self._saved(world, tmp_path)
        document = json.loads(path.read_text())
        document["graph"]["edges"][0]["deal_id"] = "tampered"
        path.write_text(json.dumps(document))
        graph = EntityGraph.load(str(path), verify=False)
        assert "tampered" in graph.deal_ids()


class TestSystemColdStart:
    def test_save_index_writes_the_graph(self, world, tmp_path):
        _, eil = world
        eil.save_index(str(tmp_path))
        assert (tmp_path / "graph.json").exists()
        manifest = json.loads(
            (tmp_path / EILSystem.EIL_MANIFEST).read_text()
        )
        assert manifest["graph"] == "graph.json"

    def test_cold_start_graph_is_bit_identical(self, world, tmp_path):
        corpus, eil = world
        eil.save_index(str(tmp_path))
        cold = EILSystem.load(str(tmp_path), corpus)
        assert cold.graph.dumps() == eil.graph.dumps()
        # And a second save round-trips the same bytes.
        again = tmp_path / "again.json"
        cold.graph.save(str(again))
        assert again.read_bytes() == (tmp_path / "graph.json").read_bytes()

    def test_legacy_directory_without_graph_rebuilds(self, world,
                                                     tmp_path):
        """Pre-graph persist layouts stay loadable (manifest v1)."""
        corpus, eil = world
        eil.save_index(str(tmp_path))
        os.remove(tmp_path / "graph.json")
        manifest_path = tmp_path / EILSystem.EIL_MANIFEST
        manifest = json.loads(manifest_path.read_text())
        del manifest["graph"]
        manifest_path.write_text(json.dumps(manifest))
        cold = EILSystem.load(str(tmp_path), corpus)
        # Rebuilt from the synopsis DB: same graph, byte for byte.
        assert cold.graph.dumps() == eil.graph.dumps()

    def test_corrupt_graph_file_fails_the_cold_start(self, world,
                                                     tmp_path):
        corpus, eil = world
        eil.save_index(str(tmp_path))
        graph_path = tmp_path / "graph.json"
        document = json.loads(graph_path.read_text())
        document["graph"]["edges"] = []
        graph_path.write_text(json.dumps(document))
        with pytest.raises(StorageError, match="checksum"):
            EILSystem.load(str(tmp_path), corpus)

    def test_mutations_after_cold_start_keep_the_graph(self, world,
                                                       tmp_path):
        corpus, eil = world
        eil.save_index(str(tmp_path))
        cold = EILSystem.load(str(tmp_path), corpus)
        victim = corpus.deals[0].deal_id
        cold.remove_deal(victim)
        assert victim not in cold.graph.deal_ids()
        cold.add_workbook(corpus.collection.workbook(victim))
        assert victim in cold.graph.deal_ids()
