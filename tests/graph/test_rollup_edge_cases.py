"""ContactRollup edge cases feeding the graph (satellite coverage).

Each scenario drives the real Figure 3 pipeline — roster documents →
SocialNetworkingAnnotator → ContactRollup → organized store — then
materializes the entity graph from the stored rows and asserts the
membership edges match the rolled-up contact list *exactly*: one edge
per row, same identity key, same display name, correct citations.
"""

import pytest

from repro.annotators import (
    ContactRollup,
    SocialNetworkingAnnotator,
    register_eil_types,
)
from repro.core.organized import OrganizedInformation
from repro.corpus import Person
from repro.docmodel import DocumentParser, Sheet, Spreadsheet
from repro.graph import EntityGraph, index_deal_from_organized
from repro.graph.model import MEMBER_OF, person_key
from repro.intranet import PersonnelDirectory
from repro.uima import CollectionProcessingEngine, TypeSystem


@pytest.fixture
def parser():
    return DocumentParser(register_eil_types(TypeSystem()))


def roster_doc(rows, deal="d1"):
    return Spreadsheet(
        doc_id=f"{deal}/roster", title="Deal Team Roster", deal_id=deal,
        sheets=(Sheet("Team", ("Name", "Role", "Email", "Phone",
                               "Organization"), tuple(rows)),),
    )


def run_pipeline(parser, docs, directory=None):
    """Roster docs → rollup → organized rows → entity graph."""
    rollup = ContactRollup(directory)
    cpe = CollectionProcessingEngine(SocialNetworkingAnnotator(),
                                     [rollup])
    report = cpe.run(parser.to_cas(d) for d in docs)
    by_deal = report.consumer_results["contact-rollup"]
    organized = OrganizedInformation()
    graph = EntityGraph()
    for deal_id in sorted(by_deal):
        organized.store_deal_context(deal_id, {"Deal Name": deal_id})
        organized.store_contacts(deal_id, by_deal[deal_id])
        index_deal_from_organized(graph, organized, deal_id)
    return by_deal, organized, graph


def assert_edges_match_rows(graph, organized, deal_id):
    """The membership edges ARE the contact list, row for row."""
    rows = organized.contacts_of(deal_id)
    edges = [
        e for e in graph._deal_edges.get(deal_id, [])
        if e.kind == MEMBER_OF
    ]
    by_cite = {e.provenance.cite(): e for e in edges}
    keyed_rows = [
        row for row in rows
        if person_key(str(row["name"] or ""),
                      str(row["email"] or "")) is not None
    ]
    assert len(edges) == len(keyed_rows)
    for row in keyed_rows:
        edge = by_cite[f"contacts:{row['contact_id']}"]
        assert edge.source.key == person_key(
            str(row["name"] or ""), str(row["email"] or "")
        )
        assert edge.attrs["name"] == (row["name"] or row["email"])
        assert edge.attrs["role"] == (row["role"] or "")


class TestNameKeyCollisionAcrossDeals:
    def test_same_name_key_merges_to_one_node(self, parser):
        """No-email mentions of one name across deals share one node."""
        docs = [
            roster_doc([("Sam White", "CSE", "", "", "ABC")], "d1"),
            roster_doc([("White, Sam", "TSA", "", "", "ABC")], "d2"),
        ]
        by_deal, organized, graph = run_pipeline(parser, docs)
        assert len(by_deal["d1"]) == 1 and len(by_deal["d2"]) == 1
        # One person node, two membership edges, two deals.
        assert graph.stats()["nodes_by_kind"]["person"] == 1
        answer = graph.worked_with("Sam White")
        assert answer.deals == ["d1", "d2"]
        for deal_id in ("d1", "d2"):
            assert_edges_match_rows(graph, organized, deal_id)

    def test_email_and_name_rows_stay_distinct_nodes(self, parser):
        """An email identity never merges with a bare name identity —
        the graph claims no more than the rollup proved."""
        docs = [
            roster_doc([("Sam White", "CSE", "sam.white@abc.com", "",
                         "ABC")], "d1"),
            roster_doc([("Sam White", "CSE", "", "", "ABC")], "d2"),
        ]
        _, organized, graph = run_pipeline(parser, docs)
        assert graph.stats()["nodes_by_kind"]["person"] == 2
        # A name query still resolves both candidates (MQ2 recall)...
        answer = graph.worked_with("Sam White")
        assert len(answer.persons) == 2
        assert answer.deals == ["d1", "d2"]
        # ...while the email query is precise.
        precise = graph.worked_with("sam.white@abc.com")
        assert precise.deals == ["d1"]
        for deal_id in ("d1", "d2"):
            assert_edges_match_rows(graph, organized, deal_id)


class TestDirectoryRefresh:
    def test_refresh_overwrites_fields_without_splitting_identity(
        self, parser
    ):
        """Step 13's refresh rewrites the display fields; the graph
        keys on email, so the refreshed record stays the same node."""
        directory = PersonnelDirectory()
        directory.add_person(
            Person("Samuel", "White", "ABC Corporation",
                   "sam.white@abc.com", "+1-914-555-7777")
        )
        docs = [
            roster_doc([("Sam White", "CSE", "sam.white@abc.com",
                         "(914) 555-0001", "")], "d1"),
        ]
        by_deal, organized, graph = run_pipeline(parser, docs,
                                                 directory)
        record = by_deal["d1"][0]
        assert record.validated is True
        assert record.name == "Samuel White"
        # The edge carries the refreshed row verbatim.
        answer = graph.role_capacity(record.role)
        assert [p.name for p in answer.people] == ["Samuel White"]
        assert_edges_match_rows(graph, organized, "d1")

    def test_refresh_does_not_split_across_deals(self, parser):
        """One deal validated, one not: same email, one person node."""
        directory = PersonnelDirectory()
        directory.add_person(
            Person("Samuel", "White", "ABC", "sam.white@abc.com", "x")
        )
        validated_docs = [
            roster_doc([("Sam White", "CSE", "sam.white@abc.com", "",
                         "")], "d1"),
        ]
        plain_docs = [
            roster_doc([("Sam White", "CSE", "sam.white@abc.com", "",
                         "")], "d2"),
        ]
        rollup_a = run_pipeline(parser, validated_docs, directory)
        rollup_b = run_pipeline(parser, plain_docs)
        organized = OrganizedInformation()
        graph = EntityGraph()
        organized.store_deal_context("d1", {"Deal Name": "d1"})
        organized.store_contacts("d1", rollup_a[0]["d1"])
        organized.store_deal_context("d2", {"Deal Name": "d2"})
        organized.store_contacts("d2", rollup_b[0]["d2"])
        for deal_id in ("d1", "d2"):
            index_deal_from_organized(graph, organized, deal_id)
        assert graph.stats()["nodes_by_kind"]["person"] == 1
        answer = graph.worked_with("sam.white@abc.com")
        assert answer.deals == ["d1", "d2"]
        # Both spellings resolve to the single email-keyed node —
        # refreshed "Samuel White" and extracted "Sam White" alike.
        for spelling in ("Samuel White", "Sam White"):
            resolved = graph.worked_with(spelling)
            assert resolved.persons == ["email:sam.white@abc.com"]
        assert_edges_match_rows(graph, organized, "d1")
        assert_edges_match_rows(graph, organized, "d2")


class TestEmailOnlyContact:
    def test_email_without_name_is_kept_and_keyed(self, parser):
        """A bare address still yields a person node keyed by email,
        with the address standing in for its display name.

        ``helpdesk@…`` defeats the first.last naming convention, so
        the annotator emits a Person with an email and no name — the
        rollup keeps it, and the graph keys it by email.
        """
        from repro.docmodel import EmailMessage

        docs = [
            EmailMessage(
                doc_id="e1", title="t", deal_id="d1",
                sender="helpdesk@abc-corp.com",
                recipients=("sam.white@abc.com",),
                subject="s", body="b",
            ),
            EmailMessage(
                doc_id="e2", title="t", deal_id="d2",
                sender="helpdesk@abc-corp.com",
                recipients=("ann.gray@abc.com",),
                subject="s", body="b",
            ),
        ]
        by_deal, organized, graph = run_pipeline(parser, docs)
        anon_rows = [
            row
            for deal_id in by_deal
            for row in organized.contacts_of(deal_id)
            if not row["name"]
        ]
        assert anon_rows, "email-only contact was dropped"
        answer = graph.worked_with("helpdesk@abc-corp.com")
        assert answer.persons == ["email:helpdesk@abc-corp.com"]
        assert answer.deals == ["d1", "d2"]
        # With no name anywhere, the display falls back to the email.
        colleagues = graph.worked_with("sam.white@abc.com").colleagues
        helpdesk = next(
            c for c in colleagues
            if c.key == "email:helpdesk@abc-corp.com"
        )
        assert helpdesk.name == "helpdesk@abc-corp.com"
        for deal_id in by_deal:
            assert_edges_match_rows(graph, organized, deal_id)
