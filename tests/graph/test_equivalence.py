"""Graph ⇄ contact-list equivalence on a real built system.

The acceptance contract for the entity graph: its answers are provably
consistent with the per-deal contact lists the Social Networking
Annotator rolled up.  These tests check the equivalence row by row —
every membership edge cites an existing ``contacts`` row and vice
versa — and then assert MQ2/MQ3 graph answers agree with answers
recomputed directly from the relational store.
"""

import pytest

from repro import CorpusConfig, CorpusGenerator, EILSystem
from repro.graph import build_graph
from repro.graph.model import MEMBER_OF, person_key


@pytest.fixture(scope="module")
def world():
    corpus = CorpusGenerator(
        CorpusConfig(seed=2008, n_deals=5, docs_per_deal=14)
    ).generate()
    return corpus, EILSystem.build(corpus)


def membership_edges(eil, deal_id):
    return [
        edge for edge in eil.graph._deal_edges.get(deal_id, [])
        if edge.kind == MEMBER_OF
    ]


class TestRowByRowEquivalence:
    def test_every_contact_row_has_exactly_one_edge(self, world):
        _, eil = world
        for deal_id in eil.deal_ids():
            rows = eil.organized.contacts_of(deal_id)
            edges = membership_edges(eil, deal_id)
            cited = {edge.provenance.cite() for edge in edges}
            expected = {
                f"contacts:{row['contact_id']}"
                for row in rows
                if person_key(str(row["name"] or ""),
                              str(row["email"] or "")) is not None
            }
            assert cited == expected
            assert len(edges) == len(cited)

    def test_edges_carry_the_rows_identity_and_role(self, world):
        _, eil = world
        for deal_id in eil.deal_ids():
            by_cite = {
                f"contacts:{row['contact_id']}": row
                for row in eil.organized.contacts_of(deal_id)
            }
            for edge in membership_edges(eil, deal_id):
                row = by_cite[edge.provenance.cite()]
                assert edge.source.key == person_key(
                    str(row["name"] or ""), str(row["email"] or "")
                )
                assert edge.attrs["role"] == (row["role"] or "")
                assert edge.target.key == deal_id

    def test_graph_person_merges_match_rollup_dedup(self, world):
        """One node per dedup key per deal — no splits, no extras."""
        _, eil = world
        for deal_id in eil.deal_ids():
            row_keys = {
                person_key(str(row["name"] or ""),
                           str(row["email"] or ""))
                for row in eil.organized.contacts_of(deal_id)
            } - {None}
            edge_keys = {
                edge.source.key
                for edge in membership_edges(eil, deal_id)
            }
            assert edge_keys == row_keys


def deals_mentioning(eil, key):
    """Deal ids whose contact list contains the person, from the DB."""
    return sorted(
        deal_id
        for deal_id in eil.deal_ids()
        if any(
            person_key(str(r["name"] or ""), str(r["email"] or "")) == key
            for r in eil.organized.contacts_of(deal_id)
        )
    )


class TestMetaQueryEquivalence:
    def test_mq2_worked_with_matches_contact_lists(self, world):
        """MQ2: graph colleagues == union of the deals' other rows."""
        corpus, eil = world
        for member in (corpus.deals[0].team[0], corpus.deals[2].team[1]):
            person = member.person
            answer = eil.graph.worked_with(person.full_name)
            my_keys = set(answer.persons)
            assert person_key(person.full_name, person.email) in my_keys
            expected_deals = sorted(
                set().union(*(deals_mentioning(eil, key)
                              for key in my_keys))
            )
            assert answer.deals == expected_deals
            expected_colleagues = set()
            for deal_id in expected_deals:
                for row in eil.organized.contacts_of(deal_id):
                    key = person_key(str(row["name"] or ""),
                                     str(row["email"] or ""))
                    if key is not None and key not in my_keys:
                        expected_colleagues.add(key)
            assert {c.key for c in answer.colleagues} == (
                expected_colleagues
            )
            for colleague in answer.colleagues:
                assert colleague.shared_deals == sorted(
                    set(deals_mentioning(eil, colleague.key))
                    & set(expected_deals)
                )

    def test_mq3_role_capacity_matches_contact_lists(self, world):
        """MQ3: graph people == rows holding the canonical role."""
        _, eil = world
        for role in ("Client Solution Executive",
                     "Cross Tower Technical Solution Architect",
                     "cross tower TSA"):
            answer = eil.graph.role_capacity(role)
            expected = {}
            for deal_id in eil.deal_ids():
                for row in eil.organized.contacts_of(deal_id):
                    if str(row["role"] or "").lower() != (
                        answer.role.lower()
                    ):
                        continue
                    key = person_key(str(row["name"] or ""),
                                     str(row["email"] or ""))
                    if key is not None:
                        expected.setdefault(key, set()).add(deal_id)
            assert {p.key for p in answer.people} == set(expected)
            for person in answer.people:
                assert person.deals == sorted(expected[person.key])


class TestIncrementalConsistency:
    def test_add_workbook_updates_the_graph(self, world):
        corpus, _ = world
        eil = EILSystem.build(corpus)
        from repro.corpus import DealGenerator, WorkbookFactory

        new_deal = DealGenerator(
            seed=999, taxonomy=corpus.taxonomy
        ).generate(len(corpus.deals) + 1)[-1]
        workbook = WorkbookFactory(
            corpus.taxonomy, seed=999
        ).build_workbook(new_deal, 14)
        eil.add_workbook(workbook)
        assert new_deal.deal_id in eil.graph.deal_ids()
        # Row-by-row equivalence holds for the onboarded deal too.
        cited = {
            e.provenance.cite()
            for e in membership_edges(eil, new_deal.deal_id)
        }
        expected = {
            f"contacts:{row['contact_id']}"
            for row in eil.organized.contacts_of(new_deal.deal_id)
            if person_key(str(row["name"] or ""),
                          str(row["email"] or "")) is not None
        }
        assert cited == expected

    def test_remove_deal_removes_the_subgraph(self, world):
        corpus, _ = world
        eil = EILSystem.build(corpus)
        victim = corpus.deals[0].deal_id
        eil.remove_deal(victim)
        assert victim not in eil.graph.deal_ids()
        answer = eil.graph.worked_with(
            corpus.deals[0].team[0].person.full_name
        )
        assert victim not in answer.deals

    def test_incremental_graph_equals_rebuilt_graph(self, world):
        """remove + re-add converges to the from-scratch build.

        Contact rows get fresh ids on re-add, so provenance citations
        legitimately differ — the contract is that the graph matches
        the *current* rows.  Everything else is identical.
        """
        import json

        corpus, _ = world
        eil = EILSystem.build(corpus)

        def shape(graph):
            payload = json.loads(graph.dumps())["graph"]
            for edge in payload["edges"]:
                edge.pop("provenance")
            # Provenance was the final tiebreaker in the canonical
            # order; re-sort so fresh row ids cannot shuffle otherwise
            # identical edge lists.
            payload["edges"].sort(
                key=lambda e: json.dumps(e, sort_keys=True)
            )
            return payload

        before = shape(eil.graph)
        victim = corpus.deals[1].deal_id
        workbook = corpus.collection.workbook(victim)
        eil.remove_deal(victim)
        eil.add_workbook(workbook)
        assert shape(eil.graph) == before
        # And the re-added deal's citations track the current rows.
        cited = {
            e.provenance.cite() for e in membership_edges(eil, victim)
        }
        expected = {
            f"contacts:{row['contact_id']}"
            for row in eil.organized.contacts_of(victim)
            if person_key(str(row["name"] or ""),
                          str(row["email"] or "")) is not None
        }
        assert cited == expected

    def test_graph_matches_standalone_materializer(self, world):
        """EILSystem's graph == build_graph over the same rows."""
        _, eil = world
        assert build_graph(eil.organized).dumps() == eil.graph.dumps()
