"""Unit tests for EntityGraph semantics (repro.graph.graph).

Hand-rolled organized-information rows drive every traversal class, so
the expected answers are small enough to verify by eye — identity
resolution, role canonicalization, Jaccard overlap, orphan cleanup and
the epoch/metrics contract.
"""

import pytest

from repro import obs
from repro.graph import EntityGraph


def contact(contact_id, name, email="", role="", category="people"):
    return {
        "contact_id": contact_id,
        "name": name,
        "email": email,
        "role": role,
        "category": category,
        "validated": False,
    }


def scope(tower, rank=0, weight=1.0):
    return {"tower": tower, "canonical": tower, "rank": rank,
            "weight": weight}


def tech(technology_id, term, tower=""):
    return {"technology_id": technology_id, "term": term, "tower": tower}


@pytest.fixture
def graph():
    """Two deals sharing one person (by email) and one tower."""
    g = EntityGraph()
    g.index_deal(
        "d1", {"name": "DEAL A"},
        contact_rows=[
            contact(1, "Sam White", "sam.white@abc.com",
                    "Client Solution Executive"),
            contact(2, "Ann Gray", "ann.gray@abc.com", "Pricer"),
        ],
        scope_rows=[scope("Network Services")],
        technology_rows=[tech(1, "VPN", "Network Services")],
    )
    g.index_deal(
        "d2", {"name": "DEAL B"},
        contact_rows=[
            # Same person, mentioned by name only: the email row of d1
            # cannot merge with it (rollup semantics), so this is a
            # distinct name-keyed node.
            contact(3, "White, Sam",
                    role="Client Solution Executive"),
            contact(4, "Bea Stone", "bea.stone@abc.com", "Pricer"),
            contact(5, "Sam White", "sam.white@abc.com",
                    "Client Solution Executive"),
        ],
        scope_rows=[scope("Network Services"), scope("End User Services",
                                                     rank=1)],
        technology_rows=[tech(2, "VoIP", "Network Services")],
    )
    return g


class TestMaterialization:
    def test_stats_count_nodes_and_edges_by_kind(self, graph):
        stats = graph.stats()
        assert stats["deals"] == 2
        assert stats["nodes_by_kind"]["deal"] == 2
        # sam(email), sam(name), ann, bea
        assert stats["nodes_by_kind"]["person"] == 4
        assert stats["nodes_by_kind"]["tower"] == 2
        assert stats["nodes_by_kind"]["technology"] == 2
        assert stats["edges_by_kind"]["member_of"] == 5
        assert stats["edges_by_kind"]["in_scope"] == 3
        assert stats["edges_by_kind"]["uses"] == 2

    def test_reindex_is_idempotent(self, graph):
        before = graph.stats()
        graph.index_deal(
            "d1", {"name": "DEAL A"},
            contact_rows=[
                contact(1, "Sam White", "sam.white@abc.com", "CSE"),
                contact(2, "Ann Gray", "ann.gray@abc.com", "Pricer"),
            ],
            scope_rows=[scope("Network Services")],
            technology_rows=[tech(1, "VPN", "Network Services")],
        )
        after = graph.stats()
        assert after["nodes"] == before["nodes"]
        assert after["edges"] == before["edges"]
        assert after["epoch"] == before["epoch"] + 1

    def test_rows_without_identity_are_skipped(self):
        g = EntityGraph()
        g.index_deal("d", None, contact_rows=[contact(1, "", "")])
        assert g.stats()["edges"] == 0

    def test_email_only_contact_keys_by_email(self):
        g = EntityGraph()
        g.index_deal("d", None,
                     contact_rows=[contact(1, "", "anon@abc.com")])
        answer = g.worked_with("anon@abc.com")
        assert answer.persons == ["email:anon@abc.com"]


class TestRemoval:
    def test_orphaned_nodes_disappear(self, graph):
        graph.remove_deal("d2")
        stats = graph.stats()
        assert stats["deals"] == 1
        # bea and name-keyed sam are gone; the shared tower survives.
        assert stats["nodes_by_kind"]["person"] == 2
        assert stats["nodes_by_kind"]["tower"] == 1
        assert graph.deal_ids() == ["d1"]

    def test_remove_unknown_deal_is_noop(self, graph):
        epoch = graph.epoch
        assert graph.remove_deal("ghost") == 0
        assert graph.epoch == epoch

    def test_epoch_bumps_on_mutations_not_queries(self, graph):
        epoch = graph.epoch
        graph.worked_with("Sam White")
        graph.expertise("network")
        assert graph.epoch == epoch
        graph.remove_deal("d1")
        assert graph.epoch == epoch + 1

    def test_name_index_follows_removal(self, graph):
        graph.remove_deal("d2")
        # d2 held the only name-keyed Sam node; resolution now finds
        # only the email-keyed one from d1.
        answer = graph.worked_with("Sam White")
        assert answer.persons == ["email:sam.white@abc.com"]
        assert answer.deals == ["d1"]


class TestWorkedWith:
    def test_resolves_name_to_all_matching_nodes(self, graph):
        """MQ2 across deals: both Sam nodes answer a name query."""
        from repro.text.normalize import name_key

        answer = graph.worked_with("Sam White")
        assert answer.persons == [
            "email:sam.white@abc.com",
            f"name:{name_key('Sam White')}",
        ]
        assert answer.deals == ["d1", "d2"]
        names = [c.name for c in answer.colleagues]
        assert names == ["Ann Gray", "Bea Stone"]

    def test_email_query_scopes_to_one_node(self, graph):
        answer = graph.worked_with("sam.white@abc.com")
        assert answer.persons == ["email:sam.white@abc.com"]
        assert answer.deals == ["d1", "d2"]

    def test_colleagues_carry_roles_and_citations(self, graph):
        answer = graph.worked_with("sam.white@abc.com")
        ann = next(c for c in answer.colleagues if c.name == "Ann Gray")
        assert ann.roles == ["Pricer"]
        assert ann.provenance == ["contacts:2"]
        assert ann.shared_deals == ["d1"]

    def test_unknown_person_yields_empty_answer(self, graph):
        answer = graph.worked_with("Zed Nobody")
        assert answer.persons == []
        assert answer.colleagues == []

    def test_limit_caps_colleagues(self, graph):
        answer = graph.worked_with("Sam White", limit=1)
        assert len(answer.colleagues) == 1


class TestRoleCapacity:
    def test_canonicalizes_the_queried_role(self):
        g = EntityGraph()
        g.index_deal("d", None, contact_rows=[
            contact(1, "Ann Gray", "ann@abc.com",
                    "Cross Tower Technical Solution Architect"),
        ])
        answer = g.role_capacity("cross tower TSA")
        assert answer.role == "Cross Tower Technical Solution Architect"
        assert [p.name for p in answer.people] == ["Ann Gray"]

    def test_only_filled_roles_match(self, graph):
        assert graph.role_capacity("").people == []

    def test_deals_are_evidence(self, graph):
        answer = graph.role_capacity("CSE")
        sam = next(p for p in answer.people
                   if p.key == "email:sam.white@abc.com")
        assert sam.deals == ["d1", "d2"]
        assert sam.provenance == ["contacts:1", "contacts:5"]


class TestExpertise:
    def test_matches_towers_and_technologies(self, graph):
        answer = graph.expertise("network")
        assert "tower:network services" in answer.matched
        assert [p.name for p in answer.people] != []
        # Everyone on d1 and d2 is reachable through the tower — the
        # name-keyed "White, Sam" node is a distinct person (no email
        # to merge on), so it answers separately.
        assert {p.name for p in answer.people} == {
            "Sam White", "Ann Gray", "Bea Stone", "White, Sam"
        }

    def test_evidence_names_the_matched_nodes(self, graph):
        answer = graph.expertise("vpn")
        assert answer.matched == ["technology:vpn"]
        for person in answer.people:
            assert person.evidence == ["technology:vpn"]
            assert person.deals == ["d1"]

    def test_no_match_is_empty(self, graph):
        answer = graph.expertise("blockchain")
        assert answer.matched == []
        assert answer.people == []


class TestTeamOverlap:
    def test_jaccard_is_exact(self, graph):
        answer = graph.team_overlap("sam.white@abc.com")
        by_name = {c.name: c for c in answer.colleagues}
        # Ann: shared {d1}, union {d1, d2} -> 0.5
        assert by_name["Ann Gray"].overlap == pytest.approx(0.5)
        # Bea: shared {d2}, union {d1, d2} -> 0.5
        assert by_name["Bea Stone"].overlap == pytest.approx(0.5)

    def test_full_overlap_ranks_first(self):
        g = EntityGraph()
        for deal_id in ("d1", "d2"):
            g.index_deal(deal_id, None, contact_rows=[
                contact(1, "Ann Gray", "ann@abc.com"),
                contact(2, "Sam White", "sam@abc.com"),
            ])
        g.index_deal("d3", None, contact_rows=[
            contact(3, "Ann Gray", "ann@abc.com"),
            contact(4, "Одна Visit", "visitor@abc.com"),
        ])
        answer = g.team_overlap("sam@abc.com")
        assert answer.colleagues[0].name == "Ann Gray"
        assert answer.colleagues[0].overlap == pytest.approx(2 / 3)


class TestDisplayNames:
    def test_most_mentions_wins(self):
        g = EntityGraph()
        g.index_deal("d1", None, contact_rows=[
            contact(1, "Samuel White", "sam@abc.com"),
            contact(9, "Ann Gray", "ann@abc.com"),
        ])
        g.index_deal("d2", None, contact_rows=[
            contact(2, "Sam White", "sam@abc.com"),
            contact(8, "Ann Gray", "ann@abc.com"),
        ])
        g.index_deal("d3", None, contact_rows=[
            contact(3, "Sam White", "sam@abc.com"),
            contact(7, "Ann Gray", "ann@abc.com"),
        ])
        answer = g.worked_with("ann@abc.com")
        sam = answer.colleagues[0]
        assert sam.name == "Sam White"

    def test_insertion_order_does_not_change_answers(self):
        deals = {
            "d1": [contact(1, "Samuel White", "sam@abc.com"),
                   contact(2, "Ann Gray", "ann@abc.com")],
            "d2": [contact(3, "Sam White", "sam@abc.com"),
                   contact(4, "Ann Gray", "ann@abc.com")],
        }
        forward, backward = EntityGraph(), EntityGraph()
        for deal_id in sorted(deals):
            forward.index_deal(deal_id, None, contact_rows=deals[deal_id])
        for deal_id in sorted(deals, reverse=True):
            backward.index_deal(deal_id, None,
                                contact_rows=deals[deal_id])
        assert forward.dumps() == backward.dumps()
        a = forward.worked_with("ann@abc.com")
        b = backward.worked_with("ann@abc.com")
        assert [c.name for c in a.colleagues] == [
            c.name for c in b.colleagues
        ]


class TestMetrics:
    def test_queries_and_gauges_are_counted(self, graph):
        with obs.use_registry() as registry:
            graph.worked_with("Sam White")
            graph.expertise("vpn")
            graph.remove_deal("d2")
            snapshot = registry.snapshot()
            assert snapshot["graph.queries"]["value"] == 2
            assert snapshot["graph.queries.worked_with"]["value"] == 1
            assert snapshot["graph.queries.expertise"]["value"] == 1
            assert snapshot["graph.deals_removed"]["value"] == 1
            assert snapshot["graph.deals"]["value"] == 1
            assert registry.histograms["graph.query_seconds"].count == 2
