"""Unit tests for counters, gauges, histograms and the registry."""

import pytest

from repro import obs
from repro.obs import MetricsRegistry
from repro.obs.metrics import Histogram


class TestCounterGauge:
    def test_counter_increments(self):
        registry = MetricsRegistry()
        registry.inc("hits")
        registry.inc("hits", 4)
        assert registry.counter("hits").value == 5

    def test_counter_rejects_decrease(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("hits").inc(-1)

    def test_gauge_overwrites(self):
        registry = MetricsRegistry()
        registry.set_gauge("docs", 10)
        registry.set_gauge("docs", 7)
        assert registry.gauge("docs").value == 7

    def test_same_name_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.histogram("h") is registry.histogram("h")


class TestHistogram:
    def test_exact_summary_stats(self):
        histogram = Histogram("h")
        for value in (1.0, 2.0, 3.0, 4.0):
            histogram.observe(value)
        summary = histogram.summary()
        assert summary["count"] == 4
        assert summary["sum"] == 10.0
        assert summary["mean"] == 2.5
        assert summary["min"] == 1.0
        assert summary["max"] == 4.0

    def test_percentiles_on_known_distribution(self):
        histogram = Histogram("h")
        for value in range(1, 101):  # 1..100
            histogram.observe(float(value))
        assert histogram.percentile(50) == pytest.approx(50, abs=1)
        assert histogram.percentile(95) == pytest.approx(95, abs=1)
        assert histogram.percentile(99) == pytest.approx(99, abs=1)
        assert histogram.percentile(0) == 1.0
        assert histogram.percentile(100) == 100.0

    def test_percentile_out_of_range(self):
        with pytest.raises(ValueError):
            Histogram("h").percentile(101)

    def test_empty_histogram(self):
        summary = Histogram("h").summary()
        assert summary["count"] == 0
        assert summary["p50"] == 0.0

    def test_decimation_bounds_memory_keeps_exact_totals(self):
        histogram = Histogram("h", max_samples=64)
        n = 1000
        for value in range(n):
            histogram.observe(float(value))
        assert histogram.count == n
        assert histogram.sum == float(sum(range(n)))
        assert histogram.min == 0.0
        assert histogram.max == float(n - 1)
        assert len(histogram._samples) <= 64
        # Percentiles stay representative after decimation.
        assert histogram.percentile(50) == pytest.approx(n / 2, rel=0.25)


class TestRegistry:
    def test_disabled_registry_records_nothing(self):
        registry = MetricsRegistry(enabled=False)
        registry.inc("c")
        registry.set_gauge("g", 3)
        registry.observe("h", 1.0)
        assert registry.names() == []

    def test_timer_records_elapsed(self):
        registry = MetricsRegistry()
        with registry.timer("stage"):
            pass
        histogram = registry.histogram("stage")
        assert histogram.count == 1
        assert histogram.sum >= 0.0

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.inc("c", 2)
        registry.set_gauge("g", 1.5)
        registry.observe("h", 3.0)
        snapshot = registry.snapshot()
        assert snapshot["c"] == {"type": "counter", "value": 2}
        assert snapshot["g"] == {"type": "gauge", "value": 1.5}
        assert snapshot["h"]["type"] == "histogram"
        assert snapshot["h"]["count"] == 1

    def test_reset(self):
        registry = MetricsRegistry()
        registry.inc("c")
        registry.reset()
        assert registry.names() == []


class TestGlobalDefault:
    def test_use_registry_swaps_and_restores(self):
        before = obs.get_registry()
        with obs.use_registry() as registry:
            assert obs.get_registry() is registry
            assert registry is not before
            obs.get_registry().inc("inside")
            assert registry.counter("inside").value == 1
        assert obs.get_registry() is before

    def test_set_registry_none_installs_fresh(self):
        with obs.use_registry() as first:
            second = obs.set_registry(None)
            assert second is not first
            assert obs.get_registry() is second

    def test_set_enabled_toggles_defaults(self):
        with obs.use_registry() as registry:
            obs.set_enabled(False)
            try:
                registry.inc("quiet")
                assert registry.names() == []
            finally:
                obs.set_enabled(True)

    def test_render_stats_mentions_metrics(self):
        registry = MetricsRegistry()
        registry.observe("span.query.execute", 0.005)
        registry.inc("engine.searches", 3)
        text = obs.render_stats(registry)
        assert "query.execute" in text
        assert "engine.searches" in text
