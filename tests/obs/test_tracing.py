"""Unit tests for spans and the tracer."""

import json

from repro import obs
from repro.obs import MetricsRegistry, Tracer


class TestSpanNesting:
    def test_parent_child_structure(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("child-1"):
                with tracer.span("grandchild"):
                    pass
            with tracer.span("child-2"):
                pass
        roots = tracer.roots
        assert [root.name for root in roots] == ["root"]
        root = roots[0]
        assert [child.name for child in root.children] == [
            "child-1", "child-2"
        ]
        assert root.children[0].children[0].name == "grandchild"

    def test_current_tracks_innermost(self):
        tracer = Tracer()
        assert tracer.current() is None
        with tracer.span("outer") as outer:
            assert tracer.current() is outer
            with tracer.span("inner") as inner:
                assert tracer.current() is inner
            assert tracer.current() is outer
        assert tracer.current() is None

    def test_durations_nest(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("child"):
                pass
        root = tracer.roots[0]
        child = root.children[0]
        assert root.finished and child.finished
        assert root.duration >= child.duration >= 0.0

    def test_sequential_roots(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [root.name for root in tracer.roots] == ["first", "second"]


class TestAttributesAndExport:
    def test_attributes(self):
        tracer = Tracer()
        with tracer.span("stage", size=3) as span:
            span.set_attribute("hits", 7)
        exported = tracer.export()
        assert exported[0]["attributes"] == {"size": 3, "hits": 7}

    def test_export_to_json(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        parsed = json.loads(tracer.to_json())
        assert parsed[0]["name"] == "a"
        assert parsed[0]["children"][0]["name"] == "b"
        assert parsed[0]["duration_s"] >= 0.0

    def test_max_roots_drops_oldest(self):
        tracer = Tracer(max_roots=2)
        for name in ("a", "b", "c"):
            with tracer.span(name):
                pass
        assert [root.name for root in tracer.roots] == ["b", "c"]

    def test_reset(self):
        tracer = Tracer()
        with tracer.span("x"):
            pass
        tracer.reset()
        assert tracer.roots == []


class TestRegistryIntegration:
    def test_span_durations_recorded_as_histograms(self):
        registry = MetricsRegistry()
        tracer = Tracer(registry=registry)
        with tracer.span("stage"):
            pass
        histogram = registry.histogram("span.stage")
        assert histogram.count == 1
        assert histogram.sum >= 0.0

    def test_registry_provider_follows_global(self):
        tracer = Tracer(registry_provider=obs.get_registry)
        with obs.use_registry() as registry:
            with tracer.span("stage"):
                pass
            assert registry.histogram("span.stage").count == 1

    def test_disabled_tracer_is_noop(self):
        registry = MetricsRegistry()
        tracer = Tracer(registry=registry, enabled=False)
        with tracer.span("stage") as span:
            span.set_attribute("ignored", 1)
        assert tracer.roots == []
        assert registry.names() == []


class TestPipelineSpans:
    def test_eil_build_and_query_produce_stage_timings(self):
        from repro import CorpusConfig, CorpusGenerator, EILSystem
        from repro.core.metaqueries import scope_query
        from repro.security.access import User

        with obs.use_registry() as registry, obs.use_tracer():
            corpus = CorpusGenerator(
                CorpusConfig(seed=11, n_deals=3, docs_per_deal=15)
            ).generate()
            eil = EILSystem.build(corpus)
            eil.search(scope_query("End User Services"),
                       User("t", frozenset({"sales"})))
            histograms = registry.histograms
            for stage in ("span.offline.pipeline", "span.offline.acquire",
                          "span.offline.analyze", "span.cpe.run",
                          "span.query.execute", "span.query.synopsis"):
                assert stage in histograms, stage
                assert histograms[stage].sum > 0.0
