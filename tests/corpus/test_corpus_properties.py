"""Property-based tests for corpus-generation invariants.

The benchmarks' validity rests on these invariants: determinism per
seed, scope/incidental disjointness, document-target compliance, and
ground-truth/document alignment (every planted fact is actually written
into the workbook somewhere).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpus import (
    CorpusConfig,
    CorpusGenerator,
    DealGenerator,
    WorkbookFactory,
    build_default_taxonomy,
)

seeds = st.integers(0, 10_000)


class TestDeterminism:
    @given(seeds)
    @settings(max_examples=10, deadline=None)
    def test_same_seed_same_world(self, seed):
        config = CorpusConfig(seed=seed, n_deals=3, docs_per_deal=14,
                              n_threads=12)
        first = CorpusGenerator(config).generate()
        second = CorpusGenerator(config).generate()
        assert [d.towers for d in first.deals] == [
            d.towers for d in second.deals
        ]
        assert [
            [m.person.email for m in d.team] for d in first.deals
        ] == [[m.person.email for m in d.team] for d in second.deals]
        first_docs = [d.doc_id for d in first.collection.all_documents()]
        second_docs = [d.doc_id for d in second.collection.all_documents()]
        assert first_docs == second_docs
        assert [t.true_types for t in first.threads] == [
            t.true_types for t in second.threads
        ]


class TestDealInvariants:
    @given(seeds)
    @settings(max_examples=15, deadline=None)
    def test_scope_and_incidentals_disjoint(self, seed):
        for deal in DealGenerator(seed=seed).generate(6):
            assert not set(deal.towers) & set(deal.incidental_services)
            assert len(set(deal.towers)) == len(deal.towers)

    @given(seeds)
    @settings(max_examples=15, deadline=None)
    def test_emails_unique_within_deal(self, seed):
        for deal in DealGenerator(seed=seed).generate(6):
            emails = [m.person.email for m in deal.team]
            assert len(emails) == len(set(emails))


class TestWorkbookInvariants:
    @given(seeds, st.integers(12, 60))
    @settings(max_examples=15, deadline=None)
    def test_docs_target_and_unique_ids(self, seed, target):
        taxonomy = build_default_taxonomy()
        deal = DealGenerator(seed=seed, taxonomy=taxonomy).generate(1)[0]
        workbook = WorkbookFactory(taxonomy, seed=seed).build_workbook(
            deal, target
        )
        assert len(workbook) == max(target, len(workbook.documents()))
        ids = [d.doc_id for d in workbook.documents()]
        assert len(ids) == len(set(ids))

    @given(seeds)
    @settings(max_examples=10, deadline=None)
    def test_planted_technologies_appear_in_documents(self, seed):
        """Ground-truth/document alignment for Meta-query 4."""
        taxonomy = build_default_taxonomy()
        deal = DealGenerator(seed=seed, taxonomy=taxonomy).generate(1)[0]
        workbook = WorkbookFactory(taxonomy, seed=seed).build_workbook(
            deal, 20
        )
        all_text = " ".join(
            rendered.fields["body"] for rendered in workbook.iter_documents()
        )
        for _, technology in deal.technologies:
            assert technology in all_text

    @given(seeds)
    @settings(max_examples=10, deadline=None)
    def test_scope_terms_appear_in_documents(self, seed):
        """Keyword recall = 1.0 in Table 2 depends on this invariant."""
        taxonomy = build_default_taxonomy()
        deal = DealGenerator(seed=seed, taxonomy=taxonomy).generate(1)[0]
        workbook = WorkbookFactory(taxonomy, seed=seed).build_workbook(
            deal, 20
        )
        all_text = " ".join(
            rendered.fields["body"] for rendered in workbook.iter_documents()
        ).lower()
        for tower in deal.towers:
            surfaces = taxonomy.get(tower).surface_forms
            assert any(s.lower() in all_text for s in surfaces)
