"""Unit tests for the services taxonomy."""

import pytest

from repro.corpus import ServiceNode, ServiceTaxonomy, build_default_taxonomy
from repro.errors import CorpusError


@pytest.fixture
def taxonomy():
    return build_default_taxonomy()


class TestStructure:
    def test_eus_subtowers(self, taxonomy):
        children = {n.name for n in taxonomy.subtowers("End User Services")}
        assert "Customer Service Center" in children
        assert "Distributed Client Services" in children

    def test_expand_includes_descendants(self, taxonomy):
        expanded = {n.name for n in taxonomy.expand("End User Services")}
        assert "Customer Service Center" in expanded
        assert "End User Services" in expanded

    def test_expand_leaf_is_self(self, taxonomy):
        assert [n.name for n in taxonomy.expand("Groupware")] == ["Groupware"]

    def test_towers_are_top_level(self, taxonomy):
        assert all(t.parent is None for t in taxonomy.towers)

    def test_every_service_has_distinct_canonical(self, taxonomy):
        names = [n.name for n in taxonomy.all_nodes]
        assert len(names) == len(set(names))


class TestLookup:
    def test_resolve_acronym(self, taxonomy):
        assert taxonomy.resolve("CSC").name == "Customer Service Center"

    def test_resolve_alias(self, taxonomy):
        assert taxonomy.resolve("Distributed Computing Services").name == (
            "Distributed Client Services"
        )

    def test_resolve_case_insensitive(self, taxonomy):
        assert taxonomy.resolve("end user services") is not None

    def test_resolve_unknown(self, taxonomy):
        assert taxonomy.resolve("Quantum Entanglement Services") is None

    def test_canonical_shortcut(self, taxonomy):
        assert taxonomy.canonical("EUS") == "End User Services"
        assert taxonomy.canonical("zzz") is None

    def test_get_unknown_raises(self, taxonomy):
        with pytest.raises(CorpusError):
            taxonomy.get("nope")

    def test_contains(self, taxonomy):
        assert "WAN" in taxonomy
        assert "nope" not in taxonomy


class TestValidation:
    def test_duplicate_rejected(self):
        with pytest.raises(CorpusError):
            ServiceTaxonomy([ServiceNode("A"), ServiceNode("a")])

    def test_unknown_parent_rejected(self):
        with pytest.raises(CorpusError):
            ServiceTaxonomy([ServiceNode("A", parent="Ghost")])

    def test_surface_forms_order(self):
        node = ServiceNode("Full Name", "FN", aliases=("Other",))
        assert node.surface_forms == ("Full Name", "FN", "Other")


class TestSuggestions:
    def test_misspelling_suggested(self, taxonomy):
        suggestions = taxonomy.suggest("Storage Managment Services")
        assert suggestions[0] == "Storage Management Services"

    def test_acronym_typo(self, taxonomy):
        assert "Customer Service Center" in taxonomy.suggest(
            "customer service centre"
        )

    def test_gibberish_yields_nothing(self, taxonomy):
        assert taxonomy.suggest("zzzzqqqq") == []

    def test_empty_input(self, taxonomy):
        assert taxonomy.suggest("   ") == []

    def test_limit_respected(self, taxonomy):
        assert len(taxonomy.suggest("services", limit=2,
                                    min_similarity=0.5)) <= 2
