"""Unit tests for deal, workbook and thread generation."""

import pytest

from repro.corpus import (
    PAPER_THREAD_COUNTS,
    CorpusConfig,
    CorpusGenerator,
    DealGenerator,
    ThreadGenerator,
    WorkbookFactory,
    build_default_taxonomy,
    deal_name_for,
)
from repro.errors import CorpusError


class TestDealNames:
    def test_sequence(self):
        assert deal_name_for(0) == "DEAL A"
        assert deal_name_for(25) == "DEAL Z"
        assert deal_name_for(26) == "DEAL AA"
        assert deal_name_for(51) == "DEAL AZ"
        assert deal_name_for(52) == "DEAL BA"


class TestDealGenerator:
    def test_deterministic(self):
        first = DealGenerator(seed=42).generate(5)
        second = DealGenerator(seed=42).generate(5)
        assert first == second

    def test_different_seeds_differ(self):
        a = DealGenerator(seed=1).generate(5)
        b = DealGenerator(seed=2).generate(5)
        assert a != b

    def test_scope_includes_implied_parents(self):
        taxonomy = build_default_taxonomy()
        for deal in DealGenerator(seed=3).generate(20):
            for tower in deal.towers:
                parent = taxonomy.get(tower).parent
                if parent:
                    assert parent in deal.towers

    def test_incidental_disjoint_from_scope(self):
        for deal in DealGenerator(seed=3).generate(20):
            assert not set(deal.incidental_services) & set(deal.towers)

    def test_team_roles_unique_people(self):
        for deal in DealGenerator(seed=3).generate(10):
            emails = [m.person.email for m in deal.team]
            assert len(emails) == len(set(emails))

    def test_technologies_belong_to_scope(self):
        for deal in DealGenerator(seed=3).generate(10):
            scoped = set(deal.towers)
            assert all(tower in scoped for tower, _ in deal.technologies)

    def test_staff_pool_shared_across_deals(self):
        generator = DealGenerator(seed=3)
        deals = generator.generate(20)
        vendor_people = [
            m.person.email
            for deal in deals
            for m in deal.team
            if m.person.organization == "Vantage Global Services"
        ]
        # Some vendor people must repeat across deals (Meta-query 2).
        assert len(vendor_people) > len(set(vendor_people))

    def test_small_pool_rejected(self):
        with pytest.raises(CorpusError):
            DealGenerator(staff_pool_size=5)


class TestWorkbookFactory:
    def make(self, docs_target=20):
        taxonomy = build_default_taxonomy()
        deal = DealGenerator(seed=5, taxonomy=taxonomy).generate(1)[0]
        factory = WorkbookFactory(taxonomy, seed=5)
        return deal, factory.build_workbook(deal, docs_target)

    def test_docs_target_met(self):
        _, workbook = self.make(30)
        assert len(workbook) == 30

    def test_core_documents_present(self):
        _, workbook = self.make(20)
        types = {d.doc_type for d in workbook.documents()}
        assert {"presentation", "spreadsheet", "form", "text"} <= types

    def test_roster_contains_team(self):
        deal, workbook = self.make(20)
        roster = workbook.documents("spreadsheet")[0]
        rendered = "\n".join(
            "\t".join(row) for row in roster.sheets[0].rows
        )
        # Every team member appears in some form (normal or reversed).
        for member in deal.team:
            person = member.person
            assert (
                person.full_name in rendered
                or person.reversed_name in rendered
                or person.full_name.upper() in rendered
            )

    def test_forms_have_cross_tower_tsa_schema(self):
        _, workbook = self.make(20)
        forms = [
            d for d in workbook.documents("form")
            if d.form_name == "Service Delivery Record"
        ]
        assert forms
        assert all(
            form.field_value("Cross Tower TSA") is not None
            for form in forms
        )

    def test_minimum_enforced(self):
        taxonomy = build_default_taxonomy()
        deal = DealGenerator(seed=5, taxonomy=taxonomy).generate(1)[0]
        with pytest.raises(CorpusError):
            WorkbookFactory(taxonomy, seed=5).build_workbook(deal, 3)


class TestThreadGenerator:
    def make_threads(self, total=120):
        taxonomy = build_default_taxonomy()
        deals = DealGenerator(seed=7, taxonomy=taxonomy).generate(4)
        return ThreadGenerator(taxonomy, deals, seed=7).generate(total)

    def test_exact_paper_counts_at_120(self):
        threads = self.make_threads(120)
        counts = {}
        for thread in threads:
            for meta_query in thread.true_types:
                counts[meta_query] = counts.get(meta_query, 0) + 1
        assert counts == PAPER_THREAD_COUNTS

    def test_social_is_mq2_union_mq3(self):
        threads = self.make_threads(120)
        social = sum(1 for t in threads if t.asks_social)
        assert social == 63
        for thread in threads:
            assert thread.asks_social == bool(
                thread.true_types & {"mq2", "mq3"}
            )

    def test_scaling_to_other_sizes(self):
        threads = self.make_threads(60)
        assert len(threads) == 60

    def test_threads_have_messages(self):
        for thread in self.make_threads(20):
            assert thread.messages
            assert thread.messages[0].subject.endswith("?")

    def test_needs_deals(self):
        with pytest.raises(CorpusError):
            ThreadGenerator(build_default_taxonomy(), [], seed=1)


class TestCorpusGenerator:
    def test_full_generation_consistent(self):
        corpus = CorpusGenerator(
            CorpusConfig(n_deals=3, docs_per_deal=15, n_threads=24)
        ).generate()
        assert len(corpus.deals) == 3
        assert corpus.document_count == 45
        assert len(corpus.threads) == 24
        assert len(corpus.directory) > 0

    def test_directory_covers_team_members(self):
        corpus = CorpusGenerator(
            CorpusConfig(n_deals=3, docs_per_deal=15)
        ).generate()
        for deal in corpus.deals:
            for member in deal.team:
                assert corpus.directory.lookup_email(
                    member.person.email
                ) is not None

    def test_deal_lookup_helpers(self):
        corpus = CorpusGenerator(
            CorpusConfig(n_deals=3, docs_per_deal=15)
        ).generate()
        deal = corpus.deals[1]
        assert corpus.deal_by_id(deal.deal_id) == deal
        with pytest.raises(CorpusError):
            corpus.deal_by_id("nope")

    def test_deals_with_service_matches_has_service(self):
        corpus = CorpusGenerator(
            CorpusConfig(n_deals=5, docs_per_deal=15)
        ).generate()
        via_helper = {
            d.deal_id for d in corpus.deals_with_service("End User Services")
        }
        direct = {
            d.deal_id
            for d in corpus.deals
            if d.has_service(corpus.taxonomy, "End User Services")
        }
        assert via_helper == direct

    def test_config_validation(self):
        with pytest.raises(CorpusError):
            CorpusConfig(n_deals=0)
        with pytest.raises(CorpusError):
            CorpusConfig(docs_per_deal=2)

    def test_paper_scale_configuration(self):
        config = CorpusConfig.paper_scale()
        assert config.n_deals == 23
        # ~15,000 documents as in Section 4.
        assert 14500 <= config.n_deals * config.docs_per_deal <= 15500

    def test_streaming_matches_full_generation(self):
        """iter_workbooks() yields exactly generate().collection."""
        config = CorpusConfig(n_deals=4, docs_per_deal=14)
        full = list(CorpusGenerator(config).generate().collection)
        streamed = list(CorpusGenerator(config).iter_workbooks())
        assert len(streamed) == len(full)
        for built, lazy in zip(full, streamed):
            assert lazy.deal_id == built.deal_id
            assert lazy.name == built.name
            full_docs = list(built.documents())
            lazy_docs = list(lazy.documents())
            assert len(lazy_docs) == len(full_docs)
            for a, b in zip(full_docs, lazy_docs):
                assert (a.doc_id, a.title) == (b.doc_id, b.title)
                assert type(a) is type(b)
                assert a.__dict__ == b.__dict__

    def test_streaming_is_lazy(self):
        """The generator yields without building the whole corpus."""
        iterator = CorpusGenerator(
            CorpusConfig(n_deals=50, docs_per_deal=12)
        ).iter_workbooks()
        first = next(iterator)
        assert first.deal_id
        iterator.close()
