"""Unit tests for the annotation framework: types, CAS, engines, CPE."""

import pytest

from repro.errors import AnnotatorError, TypeSystemError
from repro.uima import (
    AggregateAnalysisEngine,
    AnalysisEngine,
    Cas,
    CasConsumer,
    CollectionProcessingEngine,
    TypeSystem,
)


@pytest.fixture
def ts():
    type_system = TypeSystem()
    type_system.define("eil.Entity", ["normalized"])
    type_system.define("eil.Person", ["name", "email"], supertype="eil.Entity")
    type_system.define("eil.Org", ["name"], supertype="eil.Entity")
    return type_system


class TestTypeSystem:
    def test_define_and_get(self, ts):
        assert ts.get("eil.Person").supertype == "eil.Entity"
        assert "eil.Person" in ts
        assert "nope" not in ts

    def test_duplicate_definition_rejected(self, ts):
        with pytest.raises(TypeSystemError):
            ts.define("eil.Person")

    def test_unknown_supertype_rejected(self, ts):
        with pytest.raises(TypeSystemError):
            ts.define("eil.X", supertype="ghost")

    def test_feature_inheritance(self, ts):
        assert ts.all_features("eil.Person") == {"normalized", "name", "email"}

    def test_subtype_queries(self, ts):
        assert ts.is_subtype("eil.Person", "eil.Entity")
        assert not ts.is_subtype("eil.Entity", "eil.Person")
        assert ts.subtypes_of("eil.Entity") == {
            "eil.Entity", "eil.Person", "eil.Org"
        }

    def test_empty_name_rejected(self):
        with pytest.raises(TypeSystemError):
            TypeSystem().define("")


class TestCas:
    def test_annotate_and_covered_text(self, ts):
        cas = Cas("Sam White is the CSE", ts)
        annotation = cas.annotate("eil.Person", 0, 9, name="Sam White")
        assert cas.covered_text(annotation) == "Sam White"
        assert annotation["name"] == "Sam White"
        assert annotation.get("email") is None

    def test_unknown_feature_rejected(self, ts):
        cas = Cas("text", ts)
        with pytest.raises(TypeSystemError, match="phone"):
            cas.annotate("eil.Person", 0, 2, phone="x")

    def test_inherited_feature_allowed(self, ts):
        cas = Cas("text", ts)
        cas.annotate("eil.Person", 0, 2, normalized="t")

    def test_unknown_type_rejected(self, ts):
        with pytest.raises(TypeSystemError):
            Cas("text", ts).annotate("eil.Ghost", 0, 1)

    def test_span_bounds_checked(self, ts):
        cas = Cas("abc", ts)
        with pytest.raises(ValueError):
            cas.annotate("eil.Person", 0, 10)
        with pytest.raises(ValueError):
            cas.annotate("eil.Person", 2, 1)

    def test_select_polymorphic_and_ordered(self, ts):
        cas = Cas("Sam White at ACME", ts)
        cas.annotate("eil.Org", 13, 17, name="ACME")
        cas.annotate("eil.Person", 0, 9, name="Sam White")
        entities = cas.select("eil.Entity")
        assert [a.type_name for a in entities] == ["eil.Person", "eil.Org"]
        assert len(cas.select("eil.Org")) == 1
        assert len(cas.select()) == 2

    def test_select_covered(self, ts):
        cas = Cas("Sam White at ACME", ts)
        cas.annotate("eil.Person", 0, 9)
        cas.annotate("eil.Org", 13, 17)
        assert len(cas.select_covered("eil.Entity", 0, 10)) == 1

    def test_remove(self, ts):
        cas = Cas("abc", ts)
        annotation = cas.annotate("eil.Org", 0, 1)
        cas.remove(annotation)
        assert len(cas) == 0
        with pytest.raises(KeyError):
            cas.remove(annotation)

    def test_document_level_annotation(self, ts):
        cas = Cas("abc", ts)
        cas.annotate("eil.Org", name="whole-doc")
        assert cas.select("eil.Org")[0].begin == 0

    def test_metadata(self, ts):
        cas = Cas("abc", ts, metadata={"deal_id": "d1"})
        assert cas.metadata["deal_id"] == "d1"


class UppercaseOrgAnnotator(AnalysisEngine):
    """Marks every ALLCAPS word of length >= 3 as an Org."""

    name = "orgs"

    def initialize_types(self, type_system):
        if "eil.Entity" not in type_system:
            type_system.define("eil.Entity", ["normalized"])
        if "eil.Org" not in type_system:
            type_system.define("eil.Org", ["name"], supertype="eil.Entity")

    def process(self, cas):
        import re

        for match in re.finditer(r"\b[A-Z]{3,}\b", cas.text):
            cas.annotate("eil.Org", match.start(), match.end(),
                         name=match.group(0))


class ExplodingAnnotator(AnalysisEngine):
    name = "boom"

    def process(self, cas):
        raise RuntimeError("kaboom")


class TestEngines:
    def test_run_counts_annotations(self, ts):
        cas = Cas("ACME and IBM", ts)
        result = UppercaseOrgAnnotator().run(cas)
        assert result.annotations_added == 2

    def test_errors_wrapped_with_engine_name(self, ts):
        with pytest.raises(AnnotatorError, match="boom"):
            ExplodingAnnotator().run(Cas("x", ts))

    def test_aggregate_runs_in_order(self, ts):
        order = []

        class Probe(AnalysisEngine):
            def __init__(self, label):
                self.name = label

            def process(self, cas):
                order.append(self.name)

        aggregate = AggregateAnalysisEngine("agg", [Probe("a"), Probe("b")])
        aggregate.run(Cas("x", ts))
        assert order == ["a", "b"]

    def test_aggregate_flow_predicate(self, ts):
        aggregate = AggregateAnalysisEngine(
            "agg",
            [(UppercaseOrgAnnotator(), lambda cas: "ACME" in cas.text)],
        )
        cas_hit = Cas("ACME corp", ts)
        cas_miss = Cas("no orgs here", ts)
        aggregate.run(cas_hit)
        aggregate.run(cas_miss)
        assert len(cas_hit.select("eil.Org")) == 1
        assert len(cas_miss.select("eil.Org")) == 0

    def test_aggregate_detailed_reports_skips(self, ts):
        aggregate = AggregateAnalysisEngine(
            "agg", [(UppercaseOrgAnnotator(), lambda cas: False)]
        )
        results = aggregate.run_detailed(Cas("ACME", ts))
        assert results[0].skipped is True

    def test_aggregate_validates_delegates(self):
        with pytest.raises(AnnotatorError):
            AggregateAnalysisEngine("agg", [])
        with pytest.raises(AnnotatorError):
            AggregateAnalysisEngine("agg", ["not-an-engine"])

    def test_initialize_types_cascades(self):
        type_system = TypeSystem()
        aggregate = AggregateAnalysisEngine("agg", [UppercaseOrgAnnotator()])
        aggregate.initialize_types(type_system)
        assert "eil.Org" in type_system


class CountingConsumer(CasConsumer):
    name = "counter"

    def __init__(self):
        self.org_names = []

    def process_cas(self, cas):
        self.org_names.extend(
            a["name"] for a in cas.select("eil.Org")
        )

    def collection_process_complete(self):
        return sorted(set(self.org_names))


class TestCpe:
    def make_collection(self, ts, texts):
        return [Cas(text, ts) for text in texts]

    def test_cpe_runs_engine_and_consumers(self, ts):
        consumer = CountingConsumer()
        cpe = CollectionProcessingEngine(
            UppercaseOrgAnnotator(), [consumer]
        )
        report = cpe.run(self.make_collection(ts, ["ACME here", "IBM there",
                                                   "ACME again"]))
        assert report.documents_processed == 3
        assert report.consumer_results["counter"] == ["ACME", "IBM"]

    def test_cpe_continues_on_error(self, ts):
        cpe = CollectionProcessingEngine(
            AggregateAnalysisEngine(
                "agg", [(ExplodingAnnotator(),
                         lambda cas: "bad" in cas.text)]
            ),
        )
        report = cpe.run(self.make_collection(ts, ["good", "bad doc", "good"]))
        # Aggregate wraps the delegate failure; the CPE records it.
        assert report.documents_processed == 2
        assert report.documents_failed == 1
        assert report.failures

    def test_cpe_strict_mode_raises(self, ts):
        cpe = CollectionProcessingEngine(
            ExplodingAnnotator(), continue_on_error=False
        )
        with pytest.raises(AnnotatorError):
            cpe.run(self.make_collection(ts, ["x"]))

    def test_invalid_worker_counts_rejected(self, ts):
        with pytest.raises(ValueError):
            CollectionProcessingEngine(UppercaseOrgAnnotator(), workers=0)
        cpe = CollectionProcessingEngine(UppercaseOrgAnnotator())
        with pytest.raises(ValueError):
            cpe.run(self.make_collection(ts, ["ACME"]), workers=0)

    def test_failures_carry_document_identity(self, ts):
        """Failure strings name the doc, deal, and originating error."""
        cpe = CollectionProcessingEngine(
            AggregateAnalysisEngine(
                "agg", [(ExplodingAnnotator(),
                         lambda cas: "bad" in cas.text)]
            ),
        )
        collection = [
            Cas("fine", ts,
                metadata={"doc_id": "d-1", "deal_id": "deal-9"}),
            Cas("bad doc", ts,
                metadata={"doc_id": "d-2", "deal_id": "deal-9"}),
        ]
        report = cpe.run(collection)
        assert len(report.failures) == 1
        failure = report.failures[0]
        assert "d-2" in failure
        assert "deal-9" in failure
        # The wrapped original exception type, not just AnnotatorError.
        assert "RuntimeError" in failure

    def test_failures_without_metadata_still_recorded(self, ts):
        cpe = CollectionProcessingEngine(ExplodingAnnotator())
        report = cpe.run(self.make_collection(ts, ["x"]))
        assert report.documents_failed == 1
        assert "<unknown>" in report.failures[0]

    def test_parallel_run_matches_serial(self, ts):
        texts = [f"ACME {i} IBM" for i in range(12)] + ["lowercase only"]
        serial_consumer = CountingConsumer()
        serial = CollectionProcessingEngine(
            UppercaseOrgAnnotator(), [serial_consumer]
        ).run(self.make_collection(ts, texts))
        parallel_consumer = CountingConsumer()
        parallel = CollectionProcessingEngine(
            UppercaseOrgAnnotator(), [parallel_consumer], workers=4
        ).run(self.make_collection(ts, texts))
        assert parallel.documents_processed == serial.documents_processed
        assert parallel.consumer_results == serial.consumer_results
        # Consumers saw the CASes in the original document order.
        assert parallel_consumer.org_names == serial_consumer.org_names

    def test_parallel_run_records_attributable_failures(self, ts):
        cpe = CollectionProcessingEngine(
            AggregateAnalysisEngine(
                "agg", [(ExplodingAnnotator(),
                         lambda cas: "bad" in cas.text)]
            ),
            workers=3,
        )
        collection = [
            Cas(text, ts, metadata={"doc_id": f"d-{i}", "deal_id": "D"})
            for i, text in enumerate(["good", "bad one", "good", "bad two"])
        ]
        report = cpe.run(collection)
        assert report.documents_processed == 2
        assert report.documents_failed == 2
        assert any("d-1" in failure for failure in report.failures)
        assert any("d-3" in failure for failure in report.failures)

    def test_parallel_strict_mode_raises(self, ts):
        cpe = CollectionProcessingEngine(
            ExplodingAnnotator(), continue_on_error=False, workers=2
        )
        with pytest.raises(AnnotatorError):
            cpe.run(self.make_collection(ts, ["x", "y"]))

    def test_parallel_prepare_fans_out(self, ts):
        """prepare maps raw items to CASes inside the pool."""
        consumer = CountingConsumer()
        cpe = CollectionProcessingEngine(
            UppercaseOrgAnnotator(), [consumer], workers=2
        )
        report = cpe.run(
            ["ACME here", "IBM there"],
            prepare=lambda text: Cas(text, ts),
        )
        assert report.documents_processed == 2
        assert report.consumer_results["counter"] == ["ACME", "IBM"]
