"""Unit tests for the circuit breaker (repro.faults.breaker)."""

import pytest

from repro import obs
from repro.errors import (
    CircuitOpenError,
    InjectedFaultError,
    QuerySyntaxError,
)
from repro.faults import CircuitBreaker
from repro.faults.breaker import CLOSED, HALF_OPEN, OPEN


@pytest.fixture
def registry():
    with obs.use_registry() as fresh:
        yield fresh


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def _breaker(clock, threshold=3, recovery=10.0, **kwargs):
    return CircuitBreaker(
        "test", failure_threshold=threshold,
        recovery_seconds=recovery, clock=clock, **kwargs
    )


def _fail():
    raise InjectedFaultError("substrate down")


class TestCircuitBreaker:
    def test_threshold_validated(self):
        with pytest.raises(ValueError):
            CircuitBreaker("t", failure_threshold=0)

    def test_success_passes_through(self, registry):
        breaker = _breaker(FakeClock())
        assert breaker.call(lambda: "ok") == "ok"
        assert breaker.state == CLOSED

    def test_opens_at_threshold(self, registry):
        breaker = _breaker(FakeClock(), threshold=3)
        for _ in range(3):
            with pytest.raises(InjectedFaultError):
                breaker.call(_fail)
        assert breaker.state == OPEN
        assert registry.counters["breaker.open"].value == 1
        assert registry.counters["breaker.open.test"].value == 1
        assert registry.gauges["breaker.state.test"].value == 2

    def test_open_rejects_without_calling(self, registry):
        breaker = _breaker(FakeClock(), threshold=1)
        with pytest.raises(InjectedFaultError):
            breaker.call(_fail)
        calls = []
        with pytest.raises(CircuitOpenError):
            breaker.call(lambda: calls.append(1))
        assert calls == []
        assert registry.counters["breaker.rejected.test"].value == 1

    def test_success_resets_failure_count(self, registry):
        breaker = _breaker(FakeClock(), threshold=2)
        with pytest.raises(InjectedFaultError):
            breaker.call(_fail)
        breaker.call(lambda: "ok")
        with pytest.raises(InjectedFaultError):
            breaker.call(_fail)
        assert breaker.state == CLOSED  # count restarted after success

    def test_half_open_probe_success_closes(self, registry):
        clock = FakeClock()
        breaker = _breaker(clock, threshold=1, recovery=10.0)
        with pytest.raises(InjectedFaultError):
            breaker.call(_fail)
        assert breaker.state == OPEN
        clock.advance(10.0)
        assert breaker.state == HALF_OPEN
        assert breaker.call(lambda: "ok") == "ok"
        assert breaker.state == CLOSED
        assert registry.gauges["breaker.state.test"].value == 0

    def test_half_open_probe_failure_reopens(self, registry):
        clock = FakeClock()
        breaker = _breaker(clock, threshold=1, recovery=10.0)
        with pytest.raises(InjectedFaultError):
            breaker.call(_fail)
        clock.advance(10.0)
        with pytest.raises(InjectedFaultError):
            breaker.call(_fail)
        assert breaker.state == OPEN
        assert registry.counters["breaker.open"].value == 2
        # The fresh open needs a fresh recovery window.
        with pytest.raises(CircuitOpenError):
            breaker.call(lambda: "ok")
        clock.advance(10.0)
        assert breaker.state == HALF_OPEN

    def test_ignored_exceptions_do_not_trip(self, registry):
        breaker = _breaker(
            FakeClock(), threshold=1,
            trip_on=(Exception,), ignore=(QuerySyntaxError,),
        )
        with pytest.raises(QuerySyntaxError):
            breaker.call(
                lambda: (_ for _ in ()).throw(QuerySyntaxError("bad"))
            )
        assert breaker.state == CLOSED

    def test_unclassified_exceptions_do_not_trip(self, registry):
        breaker = _breaker(FakeClock(), threshold=1)
        with pytest.raises(KeyError):
            breaker.call(lambda: {}["missing"])
        assert breaker.state == CLOSED

    def test_circuit_open_error_is_transient(self, registry):
        from repro.errors import TransientError

        breaker = _breaker(FakeClock(), threshold=1)
        with pytest.raises(InjectedFaultError):
            breaker.call(_fail)
        with pytest.raises(TransientError):
            breaker.call(lambda: "ok")
