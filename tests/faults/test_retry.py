"""Unit tests for the retry policy (repro.faults.retry)."""

import pytest

from repro import obs
from repro.errors import InjectedFaultError, QuerySyntaxError
from repro.faults import RetryPolicy


@pytest.fixture
def registry():
    with obs.use_registry() as fresh:
        yield fresh


def _flaky(failures, exc=InjectedFaultError):
    """A callable failing ``failures`` times, then returning "ok"."""
    state = {"left": failures}

    def fn():
        if state["left"] > 0:
            state["left"] -= 1
            raise exc("transient")
        return "ok"

    return fn


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=2.0)

    def test_first_try_success_records_nothing(self, registry):
        policy = RetryPolicy(sleep=lambda s: None)
        assert policy.call(lambda: 42) == 42
        assert "retry.attempts" not in registry.counters

    def test_recovers_within_budget(self, registry):
        policy = RetryPolicy(max_attempts=3, sleep=lambda s: None)
        assert policy.call(_flaky(2)) == "ok"
        assert registry.counters["retry.attempts"].value == 2
        assert registry.counters["retry.recovered"].value == 1

    def test_exhausts_and_reraises(self, registry):
        policy = RetryPolicy(max_attempts=3, sleep=lambda s: None)
        with pytest.raises(InjectedFaultError):
            policy.call(_flaky(5))
        assert registry.counters["retry.attempts"].value == 2
        assert registry.counters["retry.exhausted"].value == 1

    def test_non_retryable_fails_immediately(self, registry):
        policy = RetryPolicy(max_attempts=5, sleep=lambda s: None)
        with pytest.raises(QuerySyntaxError):
            policy.call(_flaky(1, exc=QuerySyntaxError))
        assert "retry.attempts" not in registry.counters

    def test_custom_metric_prefix(self, registry):
        policy = RetryPolicy(max_attempts=2, sleep=lambda s: None)
        policy.call(_flaky(1), metric="cpe.retry")
        assert registry.counters["cpe.retry.attempts"].value == 1
        assert registry.counters["cpe.retry.recovered"].value == 1

    def test_metric_none_disables_counting(self, registry):
        policy = RetryPolicy(max_attempts=2, sleep=lambda s: None)
        policy.call(_flaky(1), metric=None)
        assert "retry.attempts" not in registry.counters

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(
            base_delay=0.01, multiplier=2.0, max_delay=0.03, jitter=0.0
        )
        assert policy.delay(1) == pytest.approx(0.01)
        assert policy.delay(2) == pytest.approx(0.02)
        assert policy.delay(3) == pytest.approx(0.03)
        assert policy.delay(9) == pytest.approx(0.03)  # capped

    def test_jitter_is_deterministic_and_bounded(self):
        a = RetryPolicy(jitter=0.5, seed=9)
        b = RetryPolicy(jitter=0.5, seed=9)
        for attempt in (1, 2, 3):
            assert a.delay(attempt) == b.delay(attempt)
            raw = min(
                a.max_delay,
                a.base_delay * a.multiplier ** (attempt - 1),
            )
            assert 0.75 * raw <= a.delay(attempt) <= 1.25 * raw

    def test_sleeps_between_attempts(self, registry):
        slept = []
        policy = RetryPolicy(
            max_attempts=3, jitter=0.0, base_delay=0.01,
            sleep=slept.append,
        )
        policy.call(_flaky(2))
        assert slept == pytest.approx([0.01, 0.02])
