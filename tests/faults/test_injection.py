"""Unit tests for the deterministic fault injector (repro.faults)."""

import pytest

from repro import obs
from repro.errors import (
    ConfigurationError,
    DeadlineExceededError,
    InjectedFaultError,
    TransientError,
)
from repro.faults import (
    FaultInjector,
    FaultProfile,
    FaultRule,
    get_injector,
    set_injector,
    use_injector,
)


@pytest.fixture
def registry():
    with obs.use_registry() as fresh:
        yield fresh


class TestFaultRule:
    def test_rates_validated(self):
        with pytest.raises(ConfigurationError):
            FaultRule(error_rate=1.5)
        with pytest.raises(ConfigurationError):
            FaultRule(timeout_rate=-0.1)
        with pytest.raises(ConfigurationError):
            FaultRule(latency=-1.0)

    def test_active(self):
        assert not FaultRule().active
        assert FaultRule(error_rate=0.1).active
        assert FaultRule(timeout_rate=0.1).active
        assert FaultRule(latency_rate=1.0, latency=0.5).active
        # A latency rate with zero latency can never fire.
        assert not FaultRule(latency_rate=1.0, latency=0.0).active


class TestFaultProfileParse:
    def test_full_grammar(self):
        profile = FaultProfile.parse(
            "db:error=0.2;index:error=0.1,latency=0.05,latency_rate=0.5"
        )
        assert profile.rules["db"].error_rate == 0.2
        index = profile.rules["index"]
        assert index.error_rate == 0.1
        assert index.latency == 0.05
        assert index.latency_rate == 0.5

    def test_bare_number_is_error_rate(self):
        profile = FaultProfile.parse("repository:0.3")
        assert profile.rules["repository"].error_rate == 0.3

    def test_latency_implies_always(self):
        profile = FaultProfile.parse("index:latency=0.01")
        assert profile.rules["index"].latency_rate == 1.0

    def test_timeout_knob(self):
        profile = FaultProfile.parse("crawler:timeout=0.4")
        assert profile.rules["crawler"].timeout_rate == 0.4

    def test_inactive_rules_dropped(self):
        assert not FaultProfile.parse("db:error=0.0")

    def test_bad_specs_rejected(self):
        for spec in ("db", "db:error=x", "db:unknown=1", ":error=0.1"):
            with pytest.raises(ConfigurationError):
                FaultProfile.parse(spec)


class TestFaultInjector:
    def test_empty_profile_is_noop(self, registry):
        injector = FaultInjector()
        assert not injector.active
        injector.check("db")
        injector.check("analysis", key="doc-1")
        assert "faults.injected" not in registry.counters

    def test_certain_error(self, registry):
        injector = FaultInjector({"db": FaultRule(error_rate=1.0)})
        with pytest.raises(InjectedFaultError):
            injector.check("db")
        assert registry.counters["faults.injected"].value == 1
        assert registry.counters["faults.injected.db.error"].value == 1

    def test_injected_fault_is_transient(self):
        injector = FaultInjector({"db": FaultRule(error_rate=1.0)})
        with pytest.raises(TransientError):
            injector.check("db")

    def test_certain_timeout(self, registry):
        injector = FaultInjector({"index": FaultRule(timeout_rate=1.0)})
        with pytest.raises(DeadlineExceededError):
            injector.check("index")
        assert (
            registry.counters["faults.injected.index.timeout"].value == 1
        )

    def test_latency_uses_injected_sleep(self, registry):
        slept = []
        injector = FaultInjector(
            {"index": FaultRule(latency_rate=1.0, latency=0.25)},
            sleep=slept.append,
        )
        injector.check("index")
        assert slept == [0.25]
        assert (
            registry.counters["faults.injected.index.latency"].value == 1
        )

    def test_unconfigured_component_unaffected(self, registry):
        injector = FaultInjector({"db": FaultRule(error_rate=1.0)})
        injector.check("index")  # no rule, no fault

    def _keyed_outcomes(self, injector, keys):
        outcomes = {}
        for key in keys:
            try:
                injector.check("analysis", key=key)
            except InjectedFaultError:
                outcomes[key] = "error"
            else:
                outcomes[key] = "ok"
        return outcomes

    def test_keyed_decisions_are_order_independent(self, registry):
        profile = {"analysis": FaultRule(error_rate=0.5)}
        keys = [f"doc-{i}" for i in range(40)]
        forward = self._keyed_outcomes(
            FaultInjector(profile, seed=7), keys
        )
        backward = self._keyed_outcomes(
            FaultInjector(profile, seed=7), list(reversed(keys))
        )
        assert forward == backward
        assert set(forward.values()) == {"ok", "error"}

    def test_keyed_decisions_depend_on_seed(self, registry):
        profile = {"analysis": FaultRule(error_rate=0.5)}
        keys = [f"doc-{i}" for i in range(40)]
        a = self._keyed_outcomes(FaultInjector(profile, seed=1), keys)
        b = self._keyed_outcomes(FaultInjector(profile, seed=2), keys)
        assert a != b

    def test_keyed_retry_redraws(self, registry):
        # Successive checks for the same key advance a per-key counter,
        # so a retry is a fresh draw rather than a guaranteed repeat.
        profile = {"analysis": FaultRule(error_rate=0.5)}
        injector = FaultInjector(profile, seed=3)
        outcomes = set()
        for _ in range(32):
            try:
                injector.check("analysis", key="doc-0")
            except InjectedFaultError:
                outcomes.add("error")
            else:
                outcomes.add("ok")
        assert outcomes == {"ok", "error"}

    def test_unkeyed_stream_deterministic(self, registry):
        profile = {"db": FaultRule(error_rate=0.5)}

        def sequence():
            injector = FaultInjector(profile, seed=11)
            out = []
            for _ in range(64):
                try:
                    injector.check("db")
                except InjectedFaultError:
                    out.append(1)
                else:
                    out.append(0)
            return out

        first, second = sequence(), sequence()
        assert first == second
        assert 0 < sum(first) < 64

    def test_wrap_checks_then_calls(self, registry):
        injector = FaultInjector(
            {"crawler": FaultRule(error_rate=1.0)}
        )
        calls = []
        wrapped = injector.wrap(
            "crawler", calls.append, key_fn=lambda doc: doc
        )
        with pytest.raises(InjectedFaultError):
            wrapped("doc-1")
        assert calls == []


class TestAmbientInjector:
    def test_default_is_noop(self):
        assert not get_injector().active

    def test_use_injector_scopes_and_restores(self):
        armed = FaultInjector({"db": FaultRule(error_rate=1.0)})
        before = get_injector()
        with use_injector(armed) as current:
            assert current is armed
            assert get_injector() is armed
        assert get_injector() is before

    def test_set_injector_returns_previous(self):
        armed = FaultInjector({"db": FaultRule(error_rate=1.0)})
        original = get_injector()
        previous = set_injector(armed)
        try:
            assert previous is original
            assert get_injector() is armed
        finally:
            set_injector(previous)
        # The ambient default must be back to the pre-test no-op —
        # anything else leaks armed faults into unrelated tests.
        assert get_injector() is original
        assert not get_injector().active
