"""Multi-threaded stress tests for the circuit breaker.

The three bugs this suite pins down (all fixed in the same PR):

* half-open must admit exactly **one** probe under concurrent load —
  a thundering herd of recovered callers must not stampede the
  substrate;
* ``breaker.open`` counts open *transitions* — an outage observed by
  many threads at once must read as one trip, not one per thread;
* the ``breaker.state.<name>`` gauge must export the half-open value
  (1), so dashboards see 2 → 1 → 0 / 2 → 1 → 2 walks.
"""

import threading

import pytest

from repro import obs
from repro.errors import CircuitOpenError, InjectedFaultError
from repro.faults import CircuitBreaker
from repro.faults.breaker import CLOSED, HALF_OPEN, OPEN


@pytest.fixture
def registry():
    with obs.use_registry() as fresh:
        yield fresh


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def _fail():
    raise InjectedFaultError("substrate down")


def _run_all(workers):
    threads = [threading.Thread(target=worker) for worker in workers]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


class TestSingleFlightProbe:
    def test_half_open_admits_exactly_one_probe(self, registry):
        clock = FakeClock()
        breaker = CircuitBreaker(
            "t", failure_threshold=1, recovery_seconds=5.0, clock=clock
        )
        with pytest.raises(InjectedFaultError):
            breaker.call(_fail)
        clock.advance(5.0)
        assert breaker.state == HALF_OPEN

        n = 8
        barrier = threading.Barrier(n)
        executed = []
        outcomes = []
        outcomes_lock = threading.Lock()

        def probe():
            # Hold the probe slot until every other caller has been
            # rejected, so the single-flight window is actually
            # contended rather than racing past itself.
            executed.append(threading.get_ident())
            deadline = 200
            while deadline:
                with outcomes_lock:
                    if len(outcomes) == n - 1:
                        return "ok"
                deadline -= 1
                threading.Event().wait(0.01)
            raise AssertionError("other callers never drained")

        def worker():
            barrier.wait()
            try:
                result = breaker.call(probe)
            except CircuitOpenError:
                with outcomes_lock:
                    outcomes.append("rejected")
            else:
                with outcomes_lock:
                    outcomes.append(result)

        _run_all([worker] * n)
        assert len(executed) == 1
        assert sorted(outcomes) == ["ok"] + ["rejected"] * (n - 1)
        assert breaker.state == CLOSED
        assert registry.counters["breaker.rejected.t"].value == n - 1

    def test_failed_probe_frees_the_slot_for_the_next_caller(
        self, registry
    ):
        clock = FakeClock()
        breaker = CircuitBreaker(
            "t", failure_threshold=1, recovery_seconds=5.0, clock=clock
        )
        with pytest.raises(InjectedFaultError):
            breaker.call(_fail)
        clock.advance(5.0)
        with pytest.raises(InjectedFaultError):
            breaker.call(_fail)  # probe fails -> re-open
        clock.advance(5.0)
        assert breaker.call(lambda: "ok") == "ok"  # slot free again
        assert breaker.state == CLOSED


class TestTripCounting:
    def test_concurrent_failures_count_one_trip(self, registry):
        breaker = CircuitBreaker(
            "t", failure_threshold=4, clock=FakeClock()
        )
        n = 16
        barrier = threading.Barrier(n)

        def worker():
            barrier.wait()
            try:
                breaker.call(_fail)
            except (InjectedFaultError, CircuitOpenError):
                pass

        _run_all([worker] * n)
        assert breaker.state == OPEN
        assert registry.counters["breaker.open"].value == 1
        assert registry.counters["breaker.open.t"].value == 1

    def test_reopen_after_probe_storm_counts_one_more_trip(
        self, registry
    ):
        clock = FakeClock()
        breaker = CircuitBreaker(
            "t", failure_threshold=1, recovery_seconds=5.0, clock=clock
        )
        with pytest.raises(InjectedFaultError):
            breaker.call(_fail)
        assert registry.counters["breaker.open"].value == 1
        clock.advance(5.0)
        n = 8
        barrier = threading.Barrier(n)

        def worker():
            barrier.wait()
            try:
                breaker.call(_fail)
            except (InjectedFaultError, CircuitOpenError):
                pass

        _run_all([worker] * n)
        assert breaker.state == OPEN
        # One probe failed, everyone else was rejected: exactly one
        # new open transition regardless of thread count.
        assert registry.counters["breaker.open"].value == 2
        assert registry.counters["breaker.open.t"].value == 2


class TestStateGauge:
    def test_gauge_walks_2_1_2_and_2_1_0(self, registry):
        clock = FakeClock()
        breaker = CircuitBreaker(
            "t", failure_threshold=1, recovery_seconds=5.0, clock=clock
        )
        gauge = lambda: registry.gauges["breaker.state.t"].value
        with pytest.raises(InjectedFaultError):
            breaker.call(_fail)
        assert gauge() == 2
        clock.advance(5.0)
        assert breaker.state == HALF_OPEN
        assert gauge() == 1  # half-open is exported, not skipped
        with pytest.raises(InjectedFaultError):
            breaker.call(_fail)
        assert gauge() == 2
        clock.advance(5.0)
        assert breaker.state == HALF_OPEN
        assert gauge() == 1
        assert breaker.call(lambda: "ok") == "ok"
        assert gauge() == 0


class TestMixedStorm:
    def test_counters_stay_consistent_under_mixed_load(self, registry):
        clock = FakeClock()
        breaker = CircuitBreaker(
            "t", failure_threshold=3, recovery_seconds=0.0, clock=clock
        )
        n, per_thread = 8, 200

        def worker(offset):
            for i in range(per_thread):
                try:
                    # Bursty failures (runs of 10) so the threshold is
                    # actually crossed and the breaker flaps open /
                    # half-open / closed throughout the storm.
                    if (offset + i // 10) % 2 == 0:
                        breaker.call(_fail)
                    else:
                        breaker.call(lambda: "ok")
                except (InjectedFaultError, CircuitOpenError):
                    pass

        _run_all(
            [lambda o=o: worker(o) for o in range(n)]
        )
        assert breaker.state in (CLOSED, HALF_OPEN, OPEN)
        # Every open transition is counted exactly once in both the
        # global and the per-breaker counter.
        assert registry.counters["breaker.open"].value >= 1
        assert (
            registry.counters["breaker.open"].value
            == registry.counters["breaker.open.t"].value
        )
        assert registry.gauges["breaker.state.t"].value in (0, 1, 2)
