"""Unit tests for the personnel directory."""

import pytest

from repro.corpus import Person
from repro.errors import IntegrityError
from repro.intranet import DirectoryRecord, PersonnelDirectory


def person(first="Sam", last="White", org="ABC", email=None):
    return Person(
        first, last, org,
        email or f"{first.lower()}.{last.lower()}@abc.com",
        "+1-914-555-0001",
    )


class TestDirectory:
    def test_add_and_lookup_email(self):
        directory = PersonnelDirectory()
        directory.add_person(person())
        record = directory.lookup_email("Sam.White@ABC.com")
        assert record is not None
        assert record.full_name == "Sam White"

    def test_lookup_name_order_insensitive(self):
        directory = PersonnelDirectory()
        directory.add_person(person())
        assert directory.lookup_name("White, Sam")
        assert directory.lookup_name("sam white")
        assert directory.lookup_name("Jane Doe") == []

    def test_serials_sequential_and_unique(self):
        directory = PersonnelDirectory()
        first = directory.add_person(person())
        second = directory.add_person(person("Jane", "Doe"))
        assert first.serial != second.serial

    def test_duplicate_email_rejected(self):
        directory = PersonnelDirectory()
        directory.add_person(person())
        with pytest.raises(IntegrityError):
            directory.add(DirectoryRecord(
                "999999", "Other Name", "sam.white@abc.com", "", "ABC"
            ))

    def test_load_people_skips_duplicates(self):
        directory = PersonnelDirectory()
        people = [person(), person(), person("Jane", "Doe")]
        assert directory.load_people(people) == 2
        assert len(directory) == 2

    def test_is_active(self):
        directory = PersonnelDirectory()
        directory.add_person(person(), active=False)
        assert directory.is_active("sam.white@abc.com") is False
        assert directory.is_active("ghost@abc.com") is None
