"""Tests for the exception hierarchy contract.

API consumers catch :class:`ReproError` at boundaries; every error the
package raises must be a subclass, and the DB-API-style database errors
must sit under :class:`DatabaseError`.
"""

import pytest

from repro import errors


class TestHierarchy:
    def test_everything_is_a_repro_error(self):
        for name in errors.__all__:
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError)

    def test_database_family(self):
        for cls in (errors.SchemaError, errors.TypeMismatchError,
                    errors.IntegrityError, errors.ProgrammingError,
                    errors.SqlSyntaxError, errors.TransactionError):
            assert issubclass(cls, errors.DatabaseError)

    def test_sql_syntax_is_programming_error(self):
        assert issubclass(errors.SqlSyntaxError, errors.ProgrammingError)

    def test_search_family(self):
        assert issubclass(errors.QuerySyntaxError, errors.SearchError)

    def test_annotator_family(self):
        assert issubclass(errors.TypeSystemError, errors.AnnotatorError)


class TestCatchability:
    def test_db_error_caught_as_repro_error(self):
        from repro.db import Database

        with pytest.raises(errors.ReproError):
            Database().execute("SELECT * FROM nowhere")

    def test_search_error_caught_as_repro_error(self):
        from repro.search import parse_query

        with pytest.raises(errors.ReproError):
            parse_query("")

    def test_corpus_error_caught_as_repro_error(self):
        from repro.corpus import CorpusConfig

        with pytest.raises(errors.ReproError):
            CorpusConfig(n_deals=0)
