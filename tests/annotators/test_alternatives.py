"""Tests for the co-occurrence alternative and the learned candidate
selector (the paper's Section 3.2.1 alternative + future work)."""

import pytest

from repro.annotators import (
    CooccurrenceSocialAnnotator,
    LearnedCandidateSelector,
    register_eil_types,
)
from repro.annotators.social import candidate_document
from repro.corpus import CorpusConfig, CorpusGenerator
from repro.docmodel import DocumentParser, register_structure_types
from repro.errors import AnnotatorError
from repro.uima import Cas, TypeSystem


def make_cas(text, metadata=None):
    type_system = register_eil_types(TypeSystem())
    return Cas(text, type_system, metadata=metadata or {})


class TestCooccurrenceAnnotator:
    def test_links_nearby_email_and_role(self):
        cas = make_cas(
            "Please contact Sam White, CSE, at sam.white@abc.com today."
        )
        CooccurrenceSocialAnnotator().run(cas)
        people = cas.select("eil.Person")
        assert len(people) == 1
        assert people[0]["name"] == "Sam White"
        assert people[0]["email"] == "sam.white@abc.com"
        assert people[0]["role"] == "Client Solution Executive"

    def test_window_limits_linking(self):
        filler = "x " * 200
        cas = make_cas(f"Sam White. {filler} sam.white@abc.com")
        CooccurrenceSocialAnnotator(window=50).run(cas)
        person = cas.select("eil.Person")[0]
        assert person.get("email") is None

    def test_blob_approach_misattributes(self):
        # Two names, one email between them: co-occurrence links the
        # email to the nearer name even when it belongs to the other —
        # the precision failure mode structure-aware parsing avoids.
        cas = make_cas(
            "Jane Doe sam.white@abc.com Sam White"
        )
        CooccurrenceSocialAnnotator().run(cas)
        by_name = {p["name"]: p for p in cas.select("eil.Person")}
        assert set(by_name) == {"Jane Doe", "Sam White"}
        # Both got linked to the same email - one of them wrongly.
        assert by_name["Jane Doe"].get("email") == "sam.white@abc.com"

    def test_capitalized_noise_filtered(self):
        cas = make_cas("Standard Service catalog for Storage Management")
        CooccurrenceSocialAnnotator().run(cas)
        assert cas.select("eil.Person") == []

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            CooccurrenceSocialAnnotator(window=0)

    def test_no_names_no_output(self):
        cas = make_cas("no capitalized bigrams here at all")
        CooccurrenceSocialAnnotator().run(cas)
        assert len(cas) == 0


class TestLearnedCandidateSelector:
    @pytest.fixture(scope="class")
    def cases(self):
        corpus = CorpusGenerator(
            CorpusConfig(n_deals=4, docs_per_deal=20)
        ).generate()
        type_system = TypeSystem()
        register_structure_types(type_system)
        register_eil_types(type_system)
        parser = DocumentParser(type_system)
        return [
            parser.to_cas(document)
            for document in corpus.collection.all_documents()
        ]

    def test_untrained_raises(self, cases):
        with pytest.raises(AnnotatorError):
            LearnedCandidateSelector().is_candidate(cases[0])

    def test_empty_training_rejected(self):
        with pytest.raises(AnnotatorError):
            LearnedCandidateSelector().train([])

    def test_bootstrap_from_rule_agrees(self, cases):
        selector = LearnedCandidateSelector()
        half = len(cases) // 2
        count = selector.train_from_rule(cases[:half], candidate_document)
        assert count == half
        agreement = selector.agreement_with(cases[half:],
                                            candidate_document)
        assert agreement >= 0.85

    def test_predicate_usable_in_aggregate(self, cases):
        from repro.annotators import SocialNetworkingAnnotator
        from repro.uima import AggregateAnalysisEngine

        selector = LearnedCandidateSelector()
        selector.train_from_rule(cases, candidate_document)
        aggregate = AggregateAnalysisEngine(
            "social",
            [(SocialNetworkingAnnotator(), selector.predicate())],
        )
        results = aggregate.run_detailed(cases[0])
        assert isinstance(results[0].skipped, bool)

    def test_agreement_on_empty_is_one(self, cases):
        selector = LearnedCandidateSelector()
        selector.train_from_rule(cases, candidate_document)
        assert selector.agreement_with([], candidate_document) == 1.0
