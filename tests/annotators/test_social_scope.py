"""Unit tests for the social-networking annotator and scope CPE."""

import pytest

from repro.annotators import (
    ContactRecord,
    ContactRollup,
    ScopeAggregator,
    SocialNetworkingAnnotator,
    candidate_document,
    register_eil_types,
    scope_candidate_document,
)
from repro.annotators.ontology import OntologyServiceAnnotator
from repro.corpus import Person, build_default_taxonomy
from repro.docmodel import (
    DocumentParser,
    EmailMessage,
    FormDocument,
    Presentation,
    Sheet,
    Slide,
    Spreadsheet,
    TextDocument,
)
from repro.intranet import PersonnelDirectory
from repro.uima import CollectionProcessingEngine, TypeSystem


@pytest.fixture
def parser():
    return DocumentParser(register_eil_types(TypeSystem()))


def roster_doc(rows, deal="d1"):
    return Spreadsheet(
        doc_id=f"{deal}/roster", title="Deal Team Roster", deal_id=deal,
        sheets=(Sheet("Team", ("Name", "Role", "Email", "Phone",
                               "Organization"), tuple(rows)),),
    )


class TestCandidateSelection:
    def test_rosters_forms_emails_are_candidates(self, parser):
        doc = roster_doc([])
        assert candidate_document(parser.to_cas(doc))

    def test_appendix_excluded(self, parser):
        doc = TextDocument(
            doc_id="x", title="DEAL A Appendix 3", deal_id="d1",
            sections=(("Appendix", "service catalog"),),
        )
        assert not candidate_document(parser.to_cas(doc))


class TestRosterExtraction:
    def test_full_row(self, parser):
        cas = parser.to_cas(roster_doc(
            [("Sam White", "CSE", "sam.white@abc.com",
              "(914) 555-0143", "ABC")]
        ))
        SocialNetworkingAnnotator().run(cas)
        person = cas.select("eil.Person")[0]
        assert person["name"] == "Sam White"
        assert person["role"] == "Client Solution Executive"
        assert person["email"] == "sam.white@abc.com"
        assert person["phone"] == "+1-914-555-0143"
        assert person["organization"] == "ABC"

    def test_reversed_name_normalized(self, parser):
        cas = parser.to_cas(roster_doc(
            [("White, Sam", "CSE", "", "", "ABC")]
        ))
        SocialNetworkingAnnotator().run(cas)
        assert cas.select("eil.Person")[0]["name"] == "Sam White"

    def test_org_inferred_from_email(self, parser):
        # Fig. 3 step 6: firstname.lastname@org.com fills the blank org.
        cas = parser.to_cas(roster_doc(
            [("Sam White", "CSE", "sam.white@abc.com", "", "")]
        ))
        SocialNetworkingAnnotator().run(cas)
        assert cas.select("eil.Person")[0]["organization"] == "ABC"

    def test_empty_name_row_skipped(self, parser):
        cas = parser.to_cas(roster_doc([("", "CSE", "", "", "")]))
        SocialNetworkingAnnotator().run(cas)
        assert cas.select("eil.Person") == []


class TestFormExtraction:
    def test_named_tsa_field(self, parser):
        form = FormDocument(
            doc_id="f", title="Service Details", deal_id="d1",
            form_name="Service Delivery Record",
            fields=(("Tower", "WAN"), ("Cross Tower TSA", "Jane Doe"),
                    ("Mainframe TSA", "")),
        )
        cas = parser.to_cas(form)
        SocialNetworkingAnnotator().run(cas)
        people = cas.select("eil.Person")
        assert len(people) == 1
        assert people[0]["name"] == "Jane Doe"
        assert people[0]["role"] == (
            "Cross Tower Technical Solution Architect"
        )

    def test_empty_fields_produce_nothing(self, parser):
        form = FormDocument(
            doc_id="f", title="Service Details", deal_id="d1",
            form_name="r",
            fields=(("Cross Tower TSA", ""), ("Lead TSA", "")),
        )
        cas = parser.to_cas(form)
        SocialNetworkingAnnotator().run(cas)
        assert cas.select("eil.Person") == []


class TestEmailExtraction:
    def test_sender_and_recipients(self, parser):
        email = EmailMessage(
            doc_id="e", title="t", deal_id="d1",
            sender="jane.doe@vantagegs.com",
            recipients=("sam.white@abc.com", "sales-dl@vantagegs.com"),
            subject="s", body="b",
        )
        cas = parser.to_cas(email)
        SocialNetworkingAnnotator().run(cas)
        people = cas.select("eil.Person")
        names = {p.get("name") for p in people}
        assert "Jane Doe" in names and "Sam White" in names
        # The distribution list itself is not a person.
        assert all(
            p.get("email") != "sales-dl@vantagegs.com" for p in people
        )


class TestContactRollup:
    def run_rollup(self, parser, docs, directory=None):
        annotator = SocialNetworkingAnnotator()
        rollup = ContactRollup(directory)
        cpe = CollectionProcessingEngine(annotator, [rollup])
        report = cpe.run(parser.to_cas(d) for d in docs)
        return report.consumer_results["contact-rollup"]

    def test_deduplicates_name_variants(self, parser):
        docs = [roster_doc([
            ("Sam White", "CSE", "sam.white@abc.com", "", "ABC"),
            ("White, Sam", "CSE", "sam.white@abc.com",
             "(914) 555-0000", "ABC"),
        ])]
        contacts = self.run_rollup(parser, docs)["d1"]
        assert len(contacts) == 1
        assert contacts[0].mention_count == 2
        assert contacts[0].phone  # merged from the second row

    def test_separate_deals_not_merged(self, parser):
        docs = [
            roster_doc([("Sam White", "CSE", "s@abc.com", "", "")], "d1"),
            roster_doc([("Sam White", "CSE", "s@abc.com", "", "")], "d2"),
        ]
        by_deal = self.run_rollup(parser, docs)
        assert set(by_deal) == {"d1", "d2"}

    def test_directory_validation_updates_fields(self, parser):
        directory = PersonnelDirectory()
        directory.add_person(
            Person("Sam", "White", "ABC Corporation",
                   "sam.white@abc.com", "+1-914-555-7777")
        )
        docs = [roster_doc([
            ("Sam White", "CSE", "sam.white@abc.com", "(914) 555-0001", "")
        ])]
        contacts = self.run_rollup(parser, docs, directory)["d1"]
        assert contacts[0].validated is True
        # Directory phone is authoritative (Fig. 3 step 13 "update").
        assert contacts[0].phone == "+1-914-555-7777"
        assert contacts[0].organization == "ABC Corporation"

    def test_inactive_person_flagged(self, parser):
        directory = PersonnelDirectory()
        directory.add_person(
            Person("Sam", "White", "ABC", "sam.white@abc.com", "x"),
            active=False,
        )
        docs = [roster_doc([("Sam White", "CSE", "sam.white@abc.com",
                             "", "")])]
        contacts = self.run_rollup(parser, docs, directory)["d1"]
        assert contacts[0].active is False

    def test_category_derived_from_role(self, parser):
        docs = [roster_doc([
            ("A B", "CSE", "a.b@x.com", "", ""),
            ("C D", "TSA", "c.d@x.com", "", ""),
            ("E F", "DPE", "e.f@x.com", "", ""),
        ])]
        contacts = self.run_rollup(parser, docs)["d1"]
        categories = {c.name: c.category for c in contacts}
        assert categories["A B"] == "core deal team"
        assert categories["C D"] == "technical support team"
        assert categories["E F"] == "delivery team"


class TestScopeAggregation:
    def scope_deck(self, deal, scoped, options=()):
        slides = [
            Slide(f"Scope: {s}",
                  bullets=(f"{s} is included in the services scope",
                           f"{s} is included in the services scope"))
            for s in scoped
        ]
        if options:
            slides.append(Slide(
                "Phase 2 Options",
                bullets=tuple(
                    f"{o} is under evaluation for inclusion in the "
                    "services scope" for o in options
                ),
            ))
        return Presentation(
            doc_id=f"{deal}/scope", title="Scope Overview", deal_id=deal,
            slides=tuple(slides),
        )

    def run_scope(self, parser, docs, min_weight=4.0):
        taxonomy = build_default_taxonomy()
        annotator = OntologyServiceAnnotator(taxonomy)
        aggregator = ScopeAggregator(min_weight=min_weight)
        cpe = CollectionProcessingEngine(annotator, [aggregator])
        report = cpe.run(parser.to_cas(d) for d in docs)
        return report.consumer_results["scope-aggregator"]

    def test_scoped_services_detected(self, parser):
        docs = [self.scope_deck("d1", ["Storage Management Services",
                                       "WAN"])]
        scopes = self.run_scope(parser, docs)
        names = [e.canonical for e in scopes["d1"]]
        assert set(names) == {"Storage Management Services", "WAN"}

    def test_significance_ordering(self, parser):
        deck = Presentation(
            doc_id="d1/scope", title="Scope", deal_id="d1",
            slides=(
                Slide("Scope: WAN",
                      bullets=tuple(
                          "WAN is included in the services scope"
                          for _ in range(4))),
                Slide("Scope: LAN",
                      bullets=("LAN is included in the services scope",
                               "LAN is included in the services scope")),
            ),
        )
        scopes = self.run_scope(parser, [deck])
        assert [e.canonical for e in scopes["d1"]] == ["WAN", "LAN"]

    def test_minutes_are_not_scope_evidence(self, parser):
        minutes = TextDocument(
            doc_id="d1/min", title="Meeting Minutes", deal_id="d1",
            sections=(("Minutes",
                       "WAN is included in the services scope " * 5),),
        )
        scopes = self.run_scope(parser, [minutes])
        assert scopes == {}

    def test_weak_mentions_below_threshold(self, parser):
        deck = Presentation(
            doc_id="d1/scope", title="Scope", deal_id="d1",
            slides=(Slide("Additional Considerations",
                          bullets=("Also covering WAN operations",)),),
        )
        scopes = self.run_scope(parser, [deck])
        assert "d1" not in scopes or not any(
            e.canonical == "WAN" for e in scopes["d1"]
        )

    def test_phase2_options_are_false_positives(self, parser):
        # Documents the known, bounded EIL error mode.
        docs = [self.scope_deck("d1", ["WAN"], options=["Groupware",
                                                        "Groupware"])]
        scopes = self.run_scope(parser, docs)
        names = {e.canonical for e in scopes["d1"]}
        assert "Groupware" in names

    def test_candidate_predicate(self, parser):
        deck = self.scope_deck("d1", ["WAN"])
        assert scope_candidate_document(parser.to_cas(deck))
        tech = TextDocument(
            doc_id="t", title="DEAL A Technology Solution: WAN",
            deal_id="d1", sections=(("x", "y"),),
        )
        assert scope_candidate_document(parser.to_cas(tech))
        minutes = TextDocument(
            doc_id="m", title="Minutes", deal_id="d1",
            sections=(("x", "y"),),
        )
        assert not scope_candidate_document(parser.to_cas(minutes))
