"""Unit tests for the Table 1 primitive annotator types."""

import pytest

from repro.annotators import (
    NaiveBayesClassifier,
    OntologyServiceAnnotator,
    PersonHeuristicAnnotator,
    RegexAnnotator,
    RegexRule,
    SectionClassifierAnnotator,
    build_contact_annotator,
    build_eil_pipeline,
    register_eil_types,
)
from repro.corpus import build_default_taxonomy
from repro.docmodel import DocumentParser, TextDocument
from repro.errors import AnnotatorError
from repro.uima import Cas, TypeSystem


def make_cas(text, metadata=None):
    ts = register_eil_types(TypeSystem())
    return Cas(text, ts, metadata=metadata or {})


class TestRegexAnnotator:
    def test_email_extraction_normalized(self):
        cas = make_cas("Contact <Sam.White@ABC.com> for details")
        build_contact_annotator().run(cas)
        emails = cas.select("eil.Email")
        assert len(emails) == 1
        assert emails[0]["address"] == "sam.white@abc.com"

    def test_phone_extraction_normalized(self):
        cas = make_cas("Call (914) 555-0143 or 914-555-0199.")
        build_contact_annotator().run(cas)
        numbers = {a["number"] for a in cas.select("eil.Phone")}
        assert numbers == {"+1-914-555-0143", "+1-914-555-0199"}

    def test_money_band(self):
        cas = make_cas("Total contract value: 50 to 100M, maybe over 100M")
        build_contact_annotator().run(cas)
        assert len(cas.select("eil.Money")) == 2

    def test_iso_date(self):
        cas = make_cas("Contract starts 2006-01-05.")
        build_contact_annotator().run(cas)
        assert cas.select("eil.Date")[0]["iso"] == "2006-01-05"

    def test_feature_factory_can_veto(self):
        import re

        rule = RegexRule("eil.Phone", re.compile(r"\d+"), lambda m: None)
        cas = make_cas("12345")
        RegexAnnotator([rule]).run(cas)
        assert len(cas) == 0

    def test_no_matches_no_annotations(self):
        cas = make_cas("nothing to see here")
        build_contact_annotator().run(cas)
        assert len(cas) == 0


class TestHeuristicsAnnotator:
    def test_role_colon_name(self):
        cas = make_cas("Lead TSA: Jane Doe")
        PersonHeuristicAnnotator().run(cas)
        person = cas.select("eil.Person")[0]
        assert person["name"] == "Jane Doe"
        assert person["role"] == "Technical Solution Architect"

    def test_name_is_the_role(self):
        cas = make_cas("Sam White is the CSE on this deal.")
        PersonHeuristicAnnotator().run(cas)
        person = cas.select("eil.Person")[0]
        assert person["name"] == "Sam White"
        assert person["role"] == "Client Solution Executive"

    def test_name_paren_role(self):
        cas = make_cas("Please ping Wei Chen (DPE) about the schedule.")
        PersonHeuristicAnnotator().run(cas)
        assert cas.select("eil.Person")[0]["role"] == (
            "Delivery Project Executive"
        )

    def test_does_not_cross_lines(self):
        # Empty field followed by the next label must not be a person.
        cas = make_cas("Lead TSA: \nDelivery Location: Onshore")
        PersonHeuristicAnnotator().run(cas)
        assert cas.select("eil.Person") == []

    def test_no_duplicate_annotations_for_same_span(self):
        cas = make_cas("Sam White is the CSE. Sam White (CSE).")
        PersonHeuristicAnnotator().run(cas)
        spans = [(a.begin, a.end) for a in cas.select("eil.Person")]
        assert len(spans) == len(set(spans))


class TestOntologyAnnotator:
    @pytest.fixture
    def annotator(self):
        return OntologyServiceAnnotator(build_default_taxonomy())

    def test_canonical_resolution(self, annotator):
        cas = make_cas("Customer Services Center is included in the scope")
        annotator.run(cas)
        service = cas.select("eil.Service")[0]
        assert service["canonical"] == "Customer Service Center"
        assert service["tower"] == "End User Services"

    def test_acronym_case_sensitive(self, annotator):
        cas = make_cas("The CSC team met; csc is not a service mention.")
        annotator.run(cas)
        services = cas.select("eil.Service")
        assert len(services) == 1
        assert services[0]["surface"] == "CSC"

    def test_longest_match_wins(self, annotator):
        cas = make_cas("Storage Management Services review")
        annotator.run(cas)
        services = cas.select("eil.Service")
        assert len(services) == 1
        assert services[0]["canonical"] == "Storage Management Services"

    def test_scope_context_weight(self, annotator):
        cas = make_cas(
            "Network Services is included in the services scope today"
        )
        annotator.run(cas)
        assert cas.select("eil.Service")[0]["weight"] == 3.0

    def test_passing_mention_weight(self, annotator):
        cas = make_cas("The client mentioned Network Services in passing")
        annotator.run(cas)
        assert cas.select("eil.Service")[0]["weight"] == 1.0

    def test_no_substring_false_positive(self, annotator):
        cas = make_cas("The LANDSCAPE document and WANDERING notes")
        annotator.run(cas)
        assert cas.select("eil.Service") == []


class TestNaiveBayes:
    def make_trained(self):
        classifier = NaiveBayesClassifier()
        classifier.train(
            [
                ("price to win aggressive credits", "strategy"),
                ("executive alignment win strategy pricing", "strategy"),
                ("offshore delivery mix cost case win", "strategy"),
                ("meeting minutes action items schedule", "other"),
                ("travel arrangements booking rooms", "other"),
                ("status report weekly call", "other"),
            ]
        )
        return classifier

    def test_predicts_trained_classes(self):
        classifier = self.make_trained()
        assert classifier.predict("win strategy is aggressive pricing") == (
            "strategy"
        )
        assert classifier.predict("weekly minutes and action items") == (
            "other"
        )

    def test_probabilities_sum_to_one(self):
        classifier = self.make_trained()
        proba = classifier.predict_proba("pricing strategy")
        assert abs(sum(proba.values()) - 1.0) < 1e-9
        assert set(proba) == {"strategy", "other"}

    def test_priors(self):
        classifier = self.make_trained()
        assert classifier.prior("strategy") == 0.5

    def test_untrained_raises(self):
        with pytest.raises(AnnotatorError):
            NaiveBayesClassifier().predict("anything")

    def test_incremental_training(self):
        classifier = self.make_trained()
        before = classifier.vocabulary_size
        classifier.train([("novel vocabulary terms", "other")])
        assert classifier.vocabulary_size > before

    def test_unseen_words_handled(self):
        classifier = self.make_trained()
        # Smoothing must keep unseen vocabulary from crashing or zeroing.
        assert classifier.predict("zzz qqq xxx") in ("strategy", "other")


class TestSectionClassifierAnnotator:
    def test_annotates_positive_sections(self):
        classifier = TestNaiveBayes().make_trained()
        parser = DocumentParser(register_eil_types(TypeSystem()))
        doc = TextDocument(
            doc_id="t", title="t", deal_id="d",
            sections=(
                ("Win Strategy", "Strategy: price to win with credits."),
                ("Logistics", "Travel arrangements were confirmed."),
            ),
        )
        cas = parser.to_cas(doc)
        annotator = SectionClassifierAnnotator(classifier, "strategy")
        annotator.run(cas)
        strategies = cas.select("eil.WinStrategy")
        assert len(strategies) == 1
        assert "price to win" in strategies[0]["text"]


class TestCompositePipeline:
    def test_pipeline_builds_and_runs(self):
        taxonomy = build_default_taxonomy()
        pipeline = build_eil_pipeline(taxonomy)
        assert len(pipeline.delegates) == 8
        ts = TypeSystem()
        pipeline.initialize_types(ts)
        parser = DocumentParser(ts)
        doc = TextDocument(
            doc_id="t", title="Notes", deal_id="d",
            sections=(("Notes",
                       "Sam White is the CSE. Scope covers Storage "
                       "Management Services with data replication. "
                       "Contact sam.white@abc.com."),),
        )
        cas = parser.to_cas(doc)
        pipeline.run(cas)
        assert cas.select("eil.Person")
        assert cas.select("eil.Service")
        assert cas.select("eil.Technology")
        assert cas.select("eil.Email")
