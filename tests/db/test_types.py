"""Unit tests for column types and coercion."""

import datetime

import pytest

from repro.db import DataType
from repro.db.types import coerce, compatible_python_type
from repro.errors import TypeMismatchError


class TestCoerce:
    def test_none_passes_through(self):
        for dtype in DataType:
            assert coerce(None, dtype) is None

    def test_integer_accepts_int(self):
        assert coerce(42, DataType.INTEGER) == 42

    def test_integer_accepts_bool(self):
        assert coerce(True, DataType.INTEGER) == 1

    def test_integer_accepts_whole_float(self):
        assert coerce(3.0, DataType.INTEGER) == 3

    def test_integer_rejects_fractional_float(self):
        with pytest.raises(TypeMismatchError):
            coerce(3.5, DataType.INTEGER)

    def test_integer_rejects_numeric_string(self):
        with pytest.raises(TypeMismatchError):
            coerce("42", DataType.INTEGER)

    def test_real_accepts_int(self):
        value = coerce(2, DataType.REAL)
        assert value == 2.0 and isinstance(value, float)

    def test_text_accepts_str_only(self):
        assert coerce("abc", DataType.TEXT) == "abc"
        with pytest.raises(TypeMismatchError):
            coerce(42, DataType.TEXT)

    def test_boolean_accepts_bool_and_01(self):
        assert coerce(True, DataType.BOOLEAN) is True
        assert coerce(0, DataType.BOOLEAN) is False
        with pytest.raises(TypeMismatchError):
            coerce(2, DataType.BOOLEAN)

    def test_date_accepts_date_and_iso_string(self):
        d = datetime.date(2006, 1, 5)
        assert coerce(d, DataType.DATE) == d
        assert coerce("2006-01-05", DataType.DATE) == d

    def test_date_accepts_datetime(self):
        dt = datetime.datetime(2006, 1, 5, 12, 30)
        assert coerce(dt, DataType.DATE) == datetime.date(2006, 1, 5)

    def test_date_rejects_bad_string(self):
        with pytest.raises(TypeMismatchError):
            coerce("01/05/2006", DataType.DATE)

    def test_error_mentions_column(self):
        with pytest.raises(TypeMismatchError, match="total_value"):
            coerce("x", DataType.REAL, column="total_value")


class TestCompatiblePythonType:
    def test_mapping_complete(self):
        for dtype in DataType:
            assert isinstance(compatible_python_type(dtype), type)
