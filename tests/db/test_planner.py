"""Planner decisions: pushdown, join strategies, EXPLAIN, scan metrics."""

import pytest

from repro import obs
from repro.db import Database, PlannerOptions


@pytest.fixture
def registry():
    with obs.use_registry() as fresh:
        yield fresh


@pytest.fixture
def db():
    # Options pinned by argument so the assertions on optimized plan
    # lines hold even when the environment selects the naive planner.
    database = Database(planner_options=PlannerOptions(), plan_cache=128)
    database.execute(
        "CREATE TABLE deals (deal_id TEXT, industry TEXT, "
        "PRIMARY KEY (deal_id))"
    )
    database.execute(
        "CREATE TABLE contacts (cid INTEGER, deal_id TEXT, nm TEXT, "
        "PRIMARY KEY (cid), "
        "FOREIGN KEY (deal_id) REFERENCES deals (deal_id))"
    )
    database.execute("CREATE INDEX ix_contacts_deal ON contacts (deal_id)")
    for i in range(4):
        database.execute(
            "INSERT INTO deals VALUES (?, ?)",
            [f"d{i}", "bank" if i % 2 else "auto"],
        )
        # 8 contacts per deal so the right side is >= 4x the probe side
        # and the index nested-loop join threshold is met.
        for j in range(8):
            database.execute(
                "INSERT INTO contacts VALUES (?, ?, ?)",
                [i * 10 + j, f"d{i}", f"p{i}.{j}"],
            )
    return database


class TestJoinStrategies:
    def test_index_nested_loop_join_when_right_indexed(self, db):
        result = db.execute(
            "SELECT c.nm FROM deals d "
            "JOIN contacts c ON c.deal_id = d.deal_id "
            "WHERE d.deal_id = 'd1'"
        )
        assert any("index join c via ix_contacts_deal" in line
                   for line in result.plan)
        assert len(result.rows) == 8

    def test_hash_join_build_side_selection(self, db):
        # No usable right index (join on nm has none) and the left side
        # is smaller than the right: build on the left.
        result = db.execute(
            "SELECT d.deal_id, c.nm FROM deals d "
            "JOIN contacts c ON c.nm = d.industry"
        )
        assert any("build=left" in line for line in result.plan)

    def test_index_join_skipped_when_left_too_large(self, db):
        # Probing contacts (32 rows) into deals (4 rows) via the pk
        # would do 32 point lookups against a 4-row table; the planner
        # falls back to a hash join.
        result = db.execute(
            "SELECT d.industry FROM contacts c "
            "JOIN deals d ON d.deal_id = c.deal_id"
        )
        assert any("hash join d" in line for line in result.plan)
        assert len(result.rows) == 32

    def test_left_join_keeps_unmatched_rows(self, db):
        db.execute("INSERT INTO deals VALUES ('d9', 'void')")
        result = db.execute(
            "SELECT d.deal_id, c.nm FROM deals d "
            "LEFT JOIN contacts c ON c.deal_id = d.deal_id "
            "WHERE d.deal_id = 'd9'"
        )
        assert result.rows == [("d9", None)]


class TestPushdown:
    def test_base_predicate_pushed_into_scan(self, db):
        result = db.execute(
            "SELECT c.nm FROM deals d "
            "JOIN contacts c ON c.deal_id = d.deal_id "
            "WHERE d.industry = 'bank' AND c.nm LIKE 'p1%'"
        )
        assert any("pushdown" in line for line in result.plan)
        assert sorted(result.column("nm")) == [f"p1.{j}" for j in range(8)]

    def test_left_join_never_pushes_right_side_predicate(self, db):
        db.execute("INSERT INTO deals VALUES ('d9', 'void')")
        result = db.execute(
            "SELECT d.deal_id, c.nm FROM deals d "
            "LEFT JOIN contacts c ON c.deal_id = d.deal_id "
            "WHERE d.deal_id = 'd9' AND c.nm IS NULL"
        )
        # Filtering c before a LEFT JOIN would change which rows get
        # null-extended; the engine must keep the unmatched row.
        assert result.rows == [("d9", None)]

    def test_runtime_null_probe_yields_empty_scan(self, db):
        result = db.execute(
            "SELECT deal_id FROM deals WHERE deal_id = ?", [None]
        )
        assert result.rows == []
        assert any("empty scan" in line for line in result.plan)


class TestScanMetrics:
    def test_join_rows_split_from_base_scan(self, db, registry):
        db.execute(
            "SELECT c.nm FROM deals d "
            "JOIN contacts c ON c.deal_id = d.deal_id"
        )
        snapshot = registry.snapshot()
        assert "db.rows_scanned" in snapshot
        assert "db.join.probe_rows" in snapshot
        # Join work is counted separately from base access regardless
        # of which join strategy the planner picked.
        assert registry.counter("db.join.probe_rows").value > 0
        assert registry.counter("db.join.build_rows").value > 0

    def test_index_join_probe_rows_accounting(self, db, registry):
        db.execute(
            "SELECT c.nm FROM deals d "
            "JOIN contacts c ON c.deal_id = d.deal_id "
            "WHERE d.deal_id = 'd1'"
        )
        # One probe row (the single deal), eight fetched contact rows.
        assert registry.counter("db.join.probe_rows").value == 1
        assert registry.counter("db.join.build_rows").value == 8

    def test_single_table_query_has_no_join_counters(self, db, registry):
        db.execute("SELECT deal_id FROM deals")
        snapshot = registry.snapshot()
        assert "db.join.build_rows" not in snapshot
        assert "db.join.probe_rows" not in snapshot


class TestExplain:
    def test_explain_select_reports_plan_without_rows(self, db):
        result = db.explain(
            "SELECT c.nm FROM deals d "
            "JOIN contacts c ON c.deal_id = d.deal_id "
            "WHERE d.deal_id = ?",
            ["d1"],
        )
        assert result.columns == ["plan"]
        lines = result.column("plan")
        assert any("index join" in line for line in lines)

    def test_explain_sql_statement(self, db):
        result = db.execute(
            "EXPLAIN SELECT deal_id FROM deals WHERE deal_id = 'd1'"
        )
        assert result.columns == ["plan"]
        assert any("index lookup pk_deals" in line
                   for line in result.column("plan"))

    def test_explain_update_uses_index_without_mutating(self, db):
        result = db.explain(
            "UPDATE contacts SET nm = 'x' WHERE deal_id = 'd1'"
        )
        lines = result.column("plan")
        assert any("ix_contacts_deal" in line for line in lines)
        assert any("candidate rows" in line for line in lines)
        assert "x" not in db.execute("SELECT nm FROM contacts").column("nm")

    def test_explain_delete_reports_access_path(self, db):
        result = db.explain("DELETE FROM contacts WHERE cid = 11")
        assert any("pk_contacts" in line for line in result.column("plan"))
        assert db.execute(
            "SELECT count(*) FROM contacts"
        ).scalar() == 32


class TestMutationPlans:
    def test_update_rowcount_carries_plan(self, db):
        result = db.execute(
            "UPDATE contacts SET nm = 'renamed' WHERE deal_id = 'd2'"
        )
        assert result.scalar() == 8
        assert any("ix_contacts_deal" in line for line in result.plan)

    def test_delete_rowcount_carries_plan(self, db):
        result = db.execute("DELETE FROM contacts WHERE cid = 30")
        assert result.scalar() == 1
        assert any("index lookup pk_contacts" in line
                   for line in result.plan)

    def test_update_without_index_scans(self, db):
        result = db.execute(
            "UPDATE contacts SET nm = 'n' WHERE nm = 'p0.0'"
        )
        assert result.scalar() == 1
        assert any("full scan contacts" in line for line in result.plan)
