"""Unit tests for the SQL lexer/parser."""

import pytest

from repro.db import (
    AggregateCall,
    ColumnRef,
    Comparison,
    DataType,
    Like,
    Literal,
    SelectStatement,
)
from repro.db.sql import (
    CreateIndex,
    CreateTable,
    Delete,
    DropTable,
    Insert,
    Update,
    parse,
)
from repro.errors import SqlSyntaxError


class TestCreateTable:
    def test_columns_and_constraints(self):
        statement = parse(
            """
            CREATE TABLE deals (
                deal_id TEXT,
                name VARCHAR(64) NOT NULL,
                value REAL DEFAULT 0.0,
                started DATE,
                international BOOLEAN,
                PRIMARY KEY (deal_id),
                UNIQUE (name)
            )
            """
        )
        assert isinstance(statement, CreateTable)
        schema = statement.schema
        assert schema.name == "deals"
        assert schema.primary_key == ("deal_id",)
        assert schema.unique == (("name",),)
        assert schema.column("name").nullable is False
        assert schema.column("value").default == 0.0
        assert schema.column("started").dtype is DataType.DATE

    def test_foreign_key(self):
        statement = parse(
            "CREATE TABLE p (id INTEGER, d TEXT, PRIMARY KEY (id), "
            "FOREIGN KEY (d) REFERENCES deals (deal_id))"
        )
        fk = statement.schema.foreign_keys[0]
        assert fk.parent_table == "deals"
        assert fk.columns == ("d",)

    def test_bad_type_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse("CREATE TABLE t (a BLOB)")

    def test_default_requires_literal(self):
        with pytest.raises(SqlSyntaxError):
            parse("CREATE TABLE t (a INTEGER DEFAULT b)")


class TestCreateIndexAndDrop:
    def test_create_index(self):
        statement = parse("CREATE INDEX ix ON t (a, b)")
        assert statement == CreateIndex("ix", "t", ("a", "b"), False)

    def test_create_unique_index(self):
        statement = parse("CREATE UNIQUE INDEX ix ON t (a)")
        assert statement.unique is True

    def test_drop_table(self):
        assert parse("DROP TABLE t") == DropTable("t")


class TestInsert:
    def test_with_columns(self):
        statement = parse(
            "INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')"
        )
        assert isinstance(statement, Insert)
        assert statement.columns == ("a", "b")
        assert len(statement.rows) == 2
        assert statement.rows[0][1] == Literal("x")

    def test_without_columns(self):
        statement = parse("INSERT INTO t VALUES (1, NULL, TRUE)")
        assert statement.columns == ()
        assert statement.rows[0][1] == Literal(None)
        assert statement.rows[0][2] == Literal(True)

    def test_string_escape(self):
        statement = parse("INSERT INTO t VALUES ('it''s')")
        assert statement.rows[0][0] == Literal("it's")

    def test_parameter_placeholders(self):
        statement = parse("INSERT INTO t VALUES (?, ?)")
        assert len(statement.rows[0]) == 2


class TestSelect:
    def test_simple(self):
        statement = parse("SELECT a, b FROM t")
        assert isinstance(statement, SelectStatement)
        assert statement.from_ref.table == "t"
        assert len(statement.items) == 2

    def test_star(self):
        statement = parse("SELECT * FROM t")
        assert statement.items[0].star

    def test_qualified_star(self):
        statement = parse("SELECT t.* FROM t")
        assert statement.items[0].star_table == "t"

    def test_aliases(self):
        statement = parse("SELECT a AS x, b y FROM t u")
        assert statement.items[0].alias == "x"
        assert statement.items[1].alias == "y"
        assert statement.from_ref.alias == "u"

    def test_joins(self):
        statement = parse(
            "SELECT * FROM a JOIN b ON a.x = b.x "
            "LEFT JOIN c ON b.y = c.y"
        )
        assert statement.joins[0].kind == "inner"
        assert statement.joins[1].kind == "left"

    def test_where_precedence(self):
        statement = parse("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3")
        # AND binds tighter than OR.
        from repro.db import LogicalAnd, LogicalOr

        assert isinstance(statement.where, LogicalOr)
        assert isinstance(statement.where.right, LogicalAnd)

    def test_like_and_not_like(self):
        statement = parse("SELECT * FROM t WHERE a LIKE '%x%'")
        assert isinstance(statement.where, Like)
        statement = parse("SELECT * FROM t WHERE a NOT LIKE '%x%'")
        assert statement.where.negated is True

    def test_in_and_is_null(self):
        statement = parse(
            "SELECT * FROM t WHERE a IN (1, 2) AND b IS NOT NULL"
        )
        assert statement.where is not None

    def test_group_by_having(self):
        statement = parse(
            "SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 1"
        )
        assert len(statement.group_by) == 1
        assert statement.having is not None

    def test_aggregates(self):
        statement = parse(
            "SELECT COUNT(*), SUM(v), AVG(v), MIN(v), MAX(v), "
            "COUNT(DISTINCT v) FROM t"
        )
        aggregate = statement.items[0].expr
        assert isinstance(aggregate, AggregateCall)
        assert aggregate.arg is None
        assert statement.items[5].expr.distinct is True

    def test_order_limit_offset(self):
        statement = parse(
            "SELECT * FROM t ORDER BY a DESC, b LIMIT 10 OFFSET 5"
        )
        assert statement.order_by[0].descending is True
        assert statement.order_by[1].descending is False
        assert statement.limit == 10
        assert statement.offset == 5

    def test_distinct(self):
        assert parse("SELECT DISTINCT a FROM t").distinct is True

    def test_arithmetic_precedence(self):
        statement = parse("SELECT 1 + 2 * 3 FROM t")
        from repro.db import Arithmetic

        expr = statement.items[0].expr
        assert isinstance(expr, Arithmetic) and expr.op == "+"

    def test_unary_minus(self):
        statement = parse("SELECT * FROM t WHERE a > -5")
        assert statement.where is not None

    def test_function_calls(self):
        statement = parse("SELECT LOWER(name) FROM t")
        assert statement.items[0].expr is not None

    def test_qualified_columns(self):
        statement = parse("SELECT t.a FROM t")
        assert statement.items[0].expr == ColumnRef("a", "t")

    def test_comparison_spellings(self):
        for sql in ("a <> 1", "a != 1"):
            statement = parse(f"SELECT * FROM t WHERE {sql}")
            assert isinstance(statement.where, Comparison)
            assert statement.where.op == "!="


class TestUpdateDelete:
    def test_update(self):
        statement = parse("UPDATE t SET a = 1, b = 'x' WHERE c = 2")
        assert isinstance(statement, Update)
        assert len(statement.assignments) == 2
        assert statement.where is not None

    def test_delete(self):
        statement = parse("DELETE FROM t WHERE a = 1")
        assert isinstance(statement, Delete)

    def test_delete_all(self):
        assert parse("DELETE FROM t").where is None


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "SELEC * FROM t",
            "SELECT FROM t",
            "SELECT * FROM",
            "SELECT * FROM t WHERE",
            "SELECT * FROM t WHERE GROUP",
            "INSERT INTO t",
            "CREATE TABLE t ()",
            "SELECT * FROM t LIMIT x",
            "SELECT * FROM t WHERE a LIKE",
            "SELECT * FROM t; SELECT * FROM u",
        ],
    )
    def test_syntax_errors(self, bad):
        with pytest.raises(SqlSyntaxError):
            parse(bad)

    def test_trailing_semicolon_ok(self):
        parse("SELECT * FROM t;")

    def test_unexpected_character(self):
        with pytest.raises(SqlSyntaxError, match="unexpected character"):
            parse("SELECT @ FROM t")
