"""Unit tests for table schemas and row validation."""

import pytest

from repro.db import Column, DataType, ForeignKey, TableSchema
from repro.errors import IntegrityError, SchemaError


def make_schema(**kwargs):
    return TableSchema(
        "deals",
        [
            Column("deal_id", DataType.TEXT),
            Column("name", DataType.TEXT, nullable=False),
            Column("value", DataType.REAL, default=0.0),
        ],
        primary_key=["deal_id"],
        **kwargs,
    )


class TestSchemaDefinition:
    def test_column_names_lowercased(self):
        schema = TableSchema("T", [Column("Deal_ID", DataType.TEXT)])
        assert schema.column_names == ["deal_id"]
        assert schema.name == "t"

    def test_duplicate_column_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema(
                "t",
                [Column("a", DataType.TEXT), Column("A", DataType.INTEGER)],
            )

    def test_empty_table_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [])

    def test_invalid_identifiers_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("1t", [Column("a", DataType.TEXT)])
        with pytest.raises(SchemaError):
            Column("bad name", DataType.TEXT)

    def test_unknown_pk_column_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema(
                "t", [Column("a", DataType.TEXT)], primary_key=["nope"]
            )

    def test_pk_columns_become_not_null(self):
        schema = make_schema()
        assert schema.column("deal_id").nullable is False

    def test_fk_column_count_mismatch(self):
        with pytest.raises(SchemaError):
            ForeignKey(("a", "b"), "parent", ("x",))

    def test_fk_empty_rejected(self):
        with pytest.raises(SchemaError):
            ForeignKey((), "parent", ())

    def test_duplicate_pk_column_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema(
                "t",
                [Column("a", DataType.TEXT)],
                primary_key=["a", "a"],
            )

    def test_default_is_coerced_at_definition(self):
        column = Column("n", DataType.REAL, default=5)
        assert column.default == 5.0
        with pytest.raises(Exception):
            Column("n", DataType.REAL, default="x")


class TestRowValidation:
    def test_defaults_applied(self):
        row = make_schema().validate_row({"deal_id": "d1", "name": "A"})
        assert row == ("d1", "A", 0.0)

    def test_not_null_enforced(self):
        with pytest.raises(IntegrityError, match="name"):
            make_schema().validate_row({"deal_id": "d1", "name": None})

    def test_missing_pk_rejected(self):
        with pytest.raises(IntegrityError):
            make_schema().validate_row({"name": "A"})

    def test_unknown_column_rejected(self):
        with pytest.raises(IntegrityError, match="typo"):
            make_schema().validate_row(
                {"deal_id": "d1", "name": "A", "typo": 1}
            )

    def test_case_insensitive_keys(self):
        row = make_schema().validate_row({"DEAL_ID": "d1", "Name": "A"})
        assert row[0] == "d1"

    def test_row_dict_roundtrip(self):
        schema = make_schema()
        row = schema.validate_row({"deal_id": "d1", "name": "A", "value": 2})
        assert schema.row_dict(row) == {
            "deal_id": "d1",
            "name": "A",
            "value": 2.0,
        }

    def test_key_of(self):
        schema = make_schema()
        row = schema.validate_row({"deal_id": "d1", "name": "A"})
        assert schema.key_of(row, ["name", "deal_id"]) == ("A", "d1")

    def test_position_and_has_column(self):
        schema = make_schema()
        assert schema.position("value") == 2
        assert schema.has_column("VALUE")
        assert not schema.has_column("nope")
        with pytest.raises(SchemaError):
            schema.position("nope")
