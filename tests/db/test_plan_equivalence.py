"""Option-lattice equivalence: every planner configuration, same rows.

The contract the overhauled engine makes is that planner choices can
never change results, only speed.  This suite enforces it directly: a
zoo of SELECT shapes runs under *every* combination of planner feature
flags (the full 2^6 lattice) and each result — columns, rows, and row
order — must be identical to the seed row-at-a-time executor kept in
:func:`repro.db.query.naive_execute_select`.

The fixture data is deliberately adversarial: NULL join keys on both
sides, duplicate keys, ties in sort columns, floats whose sum depends
on fold order, and an empty table.
"""

import itertools

import pytest

from repro.db import Database, parse
from repro.db.plan import PlannerOptions, SelectPlan
from repro.db.query import naive_execute_select

FLAGS = (
    "predicate_pushdown",
    "index_join",
    "join_side_selection",
    "compiled_expressions",
    "streaming_aggregation",
    "topk_order",
)

LATTICE = [
    PlannerOptions(**dict(zip(FLAGS, bits)))
    for bits in itertools.product((False, True), repeat=len(FLAGS))
]


@pytest.fixture(scope="module")
def db():
    database = Database(plan_cache=0)
    database.execute(
        "CREATE TABLE deals (deal_id TEXT, industry TEXT, value REAL, "
        "lead TEXT, PRIMARY KEY (deal_id))"
    )
    database.execute(
        "CREATE TABLE contacts (cid INTEGER, deal_id TEXT, nm TEXT, "
        "role TEXT, PRIMARY KEY (cid))"
    )
    database.execute(
        "CREATE TABLE scopes (sid INTEGER, deal_id TEXT, tower TEXT, "
        "hours REAL, PRIMARY KEY (sid))"
    )
    database.execute("CREATE TABLE empty (k INTEGER, PRIMARY KEY (k))")
    database.execute("CREATE INDEX ix_contacts_deal ON contacts (deal_id)")
    database.execute("CREATE INDEX ix_deals_industry ON deals (industry)")
    database.execute("CREATE INDEX ix_scopes_deal ON scopes (deal_id)")
    deals = [
        ("d1", "bank", 10.5, "Sam"),
        ("d2", "auto", 0.1, "Sam"),
        ("d3", "bank", 0.2, None),
        ("d4", "retail", 0.3, "Wei"),
        ("d5", None, 10.5, "Jane"),
        ("d6", "bank", None, "Jane"),
    ]
    for row in deals:
        database.execute("INSERT INTO deals VALUES (?, ?, ?, ?)", list(row))
    contacts = [
        (1, "d1", "Sam", "CSE"),
        (2, "d1", "Jane", "TSA"),
        (3, "d2", "Sam", "CSE"),
        (4, None, "Ghost", "DPE"),   # NULL join key, right side
        (5, "d3", "Wei", "DPE"),
        (6, "d3", "Wei", "CSE"),     # duplicate nm, different role
        (7, "dX", "Orphan", "TSA"),  # key with no matching deal
        (8, "d5", "Jane", None),
    ]
    for row in contacts:
        database.execute(
            "INSERT INTO contacts VALUES (?, ?, ?, ?)", list(row)
        )
    scopes = [
        (1, "d1", "WAN", 100.0),
        (2, "d1", "LAN", 0.1),
        (3, "d2", "WAN", 0.2),
        (4, "d3", None, 0.3),
        (5, None, "LAN", 0.4),       # NULL join key again
        (6, "d4", "WAN", None),
    ]
    for row in scopes:
        database.execute("INSERT INTO scopes VALUES (?, ?, ?, ?)", list(row))
    return database


# (sql, params) pairs; every shape the engine optimizes differently.
QUERY_ZOO = [
    ("SELECT * FROM deals", ()),
    ("SELECT deal_id, value FROM deals WHERE industry = 'bank'", ()),
    ("SELECT deal_id FROM deals WHERE industry = ?", ("auto",)),
    ("SELECT deal_id FROM deals WHERE industry = ?", (None,)),
    ("SELECT deal_id FROM deals WHERE value > 0.15 AND lead = 'Sam'", ()),
    ("SELECT deal_id FROM deals WHERE industry IS NULL", ()),
    ("SELECT deal_id FROM deals ORDER BY value DESC, deal_id", ()),
    ("SELECT deal_id FROM deals ORDER BY value DESC, deal_id LIMIT 3", ()),
    ("SELECT deal_id FROM deals ORDER BY value LIMIT 2 OFFSET 2", ()),
    ("SELECT DISTINCT industry FROM deals", ()),
    ("SELECT DISTINCT industry FROM deals LIMIT 2", ()),
    ("SELECT DISTINCT industry FROM deals LIMIT 2 OFFSET 1", ()),
    ("SELECT DISTINCT lead FROM deals ORDER BY lead LIMIT 2", ()),
    ("SELECT deal_id FROM deals LIMIT 4", ()),
    ("SELECT k FROM empty", ()),
    ("SELECT count(*) FROM empty", ()),
    # Joins — NULL keys on both sides must never match.
    ("SELECT d.deal_id, c.nm FROM deals d "
     "JOIN contacts c ON c.deal_id = d.deal_id", ()),
    ("SELECT d.deal_id, c.nm FROM deals d "
     "LEFT JOIN contacts c ON c.deal_id = d.deal_id", ()),
    ("SELECT d.deal_id, c.nm FROM deals d "
     "JOIN contacts c ON c.deal_id = d.deal_id "
     "WHERE d.industry = 'bank' AND c.role = 'CSE'", ()),
    ("SELECT d.deal_id, c.nm FROM deals d "
     "LEFT JOIN contacts c ON c.deal_id = d.deal_id "
     "WHERE d.value > 0.15", ()),
    # LEFT JOIN + predicate on the right side: pushdown must not
    # filter before null-extension.
    ("SELECT d.deal_id, c.nm FROM deals d "
     "LEFT JOIN contacts c ON c.deal_id = d.deal_id "
     "WHERE c.nm IS NULL", ()),
    ("SELECT d.deal_id, c.nm, s.tower FROM deals d "
     "JOIN contacts c ON c.deal_id = d.deal_id "
     "JOIN scopes s ON s.deal_id = d.deal_id "
     "ORDER BY d.deal_id, c.cid, s.sid", ()),
    ("SELECT a.nm, b.nm FROM contacts a "
     "JOIN contacts b ON b.deal_id = a.deal_id "
     "WHERE a.cid != b.cid", ()),
    # Aggregation — order-sensitive float sums, DISTINCT aggregates,
    # HAVING, ORDER BY on aggregate aliases, expressions over results.
    ("SELECT count(*), sum(value), avg(value), min(value), max(value) "
     "FROM deals", ()),
    ("SELECT industry, count(*) n, sum(value) total FROM deals "
     "GROUP BY industry", ()),
    ("SELECT industry, count(*) n FROM deals GROUP BY industry "
     "ORDER BY n DESC, industry", ()),
    ("SELECT industry, sum(value) total FROM deals GROUP BY industry "
     "ORDER BY total DESC LIMIT 2", ()),
    ("SELECT industry, count(DISTINCT lead) leads FROM deals "
     "GROUP BY industry ORDER BY leads DESC, industry LIMIT 2", ()),
    ("SELECT industry FROM deals GROUP BY industry "
     "HAVING count(*) > 1", ()),
    ("SELECT d.industry, count(*) n, sum(s.hours) h FROM deals d "
     "JOIN scopes s ON s.deal_id = d.deal_id "
     "GROUP BY d.industry ORDER BY h DESC, d.industry", ()),
    ("SELECT industry, max(value) - min(value) spread FROM deals "
     "GROUP BY industry ORDER BY industry", ()),
    ("SELECT lead, count(*) FROM deals WHERE industry = ? "
     "GROUP BY lead ORDER BY lead", ("bank",)),
    ("SELECT sum(value) FROM deals WHERE industry = 'nope'", ()),
]


def _reference(db, sql, params):
    return naive_execute_select(db, parse(sql), params)


@pytest.mark.parametrize("sql,params", QUERY_ZOO,
                         ids=[q[0][:60] for q in QUERY_ZOO])
def test_every_option_combination_matches_naive(db, sql, params):
    statement = parse(sql)
    expected = _reference(db, sql, params)
    for options in LATTICE:
        result = SelectPlan(db, statement, options).execute(params)
        assert result.columns == expected.columns, options
        assert result.rows == expected.rows, options


def test_lattice_is_exhaustive():
    assert len(LATTICE) == 64
    assert PlannerOptions.naive() in LATTICE
    assert PlannerOptions() in LATTICE


def test_plans_are_reusable_across_params(db):
    statement = parse("SELECT deal_id FROM deals WHERE industry = ?")
    plan = SelectPlan(db, statement, PlannerOptions())
    for value in ("bank", "auto", None, "retail"):
        expected = _reference(
            db, "SELECT deal_id FROM deals WHERE industry = ?", (value,)
        )
        assert plan.execute((value,)).rows == expected.rows
