"""Deeper executor tests: multi-joins, self-joins, aliases, edge cases."""

import pytest

from repro.db import Database
from repro.errors import ProgrammingError


@pytest.fixture
def db():
    database = Database()
    database.execute(
        "CREATE TABLE deals (deal_id TEXT, name TEXT, PRIMARY KEY (deal_id))"
    )
    database.execute(
        "CREATE TABLE contacts (cid INTEGER, deal_id TEXT, nm TEXT, "
        "role TEXT, PRIMARY KEY (cid), "
        "FOREIGN KEY (deal_id) REFERENCES deals (deal_id))"
    )
    database.execute(
        "CREATE TABLE scopes (sid INTEGER, deal_id TEXT, svc TEXT, "
        "PRIMARY KEY (sid), "
        "FOREIGN KEY (deal_id) REFERENCES deals (deal_id))"
    )
    database.execute(
        "INSERT INTO deals VALUES ('d1', 'A'), ('d2', 'B'), ('d3', 'C')"
    )
    database.execute(
        "INSERT INTO contacts VALUES "
        "(1, 'd1', 'Sam', 'CSE'), (2, 'd1', 'Jane', 'TSA'), "
        "(3, 'd2', 'Sam', 'CSE'), (4, 'd3', 'Wei', 'DPE')"
    )
    database.execute(
        "INSERT INTO scopes VALUES "
        "(1, 'd1', 'WAN'), (2, 'd2', 'WAN'), (3, 'd2', 'LAN')"
    )
    return database


class TestMultiJoin:
    def test_three_way_join(self, db):
        result = db.execute(
            "SELECT d.name, c.nm, s.svc FROM deals d "
            "JOIN contacts c ON c.deal_id = d.deal_id "
            "JOIN scopes s ON s.deal_id = d.deal_id "
            "WHERE s.svc = 'WAN' ORDER BY d.name, c.nm"
        )
        assert result.rows == [
            ("A", "Jane", "WAN"), ("A", "Sam", "WAN"), ("B", "Sam", "WAN"),
        ]

    def test_self_join_colleagues(self, db):
        # Who worked on a deal with Sam? (the Meta-query 2 SQL shape)
        result = db.execute(
            "SELECT DISTINCT b.nm FROM contacts a "
            "JOIN contacts b ON b.deal_id = a.deal_id "
            "WHERE a.nm = 'Sam' AND b.nm != 'Sam' ORDER BY b.nm"
        )
        assert result.column("nm") == ["Jane"]

    def test_left_join_chain(self, db):
        result = db.execute(
            "SELECT d.deal_id, s.svc FROM deals d "
            "LEFT JOIN scopes s ON s.deal_id = d.deal_id "
            "ORDER BY d.deal_id, s.svc"
        )
        assert ("d3", None) in result.rows

    def test_join_with_non_equi_condition(self, db):
        # Forces the nested-loop path (no hash join possible).
        result = db.execute(
            "SELECT COUNT(*) FROM contacts a "
            "JOIN contacts b ON a.cid < b.cid"
        )
        assert result.scalar() == 6  # C(4,2)
        # And verify the planner chose nested loop.
        result = db.execute(
            "SELECT a.cid FROM contacts a JOIN contacts b ON a.cid < b.cid"
        )
        assert any("nested loop" in step for step in result.plan)

    def test_hash_join_detected_for_equi(self, db):
        result = db.execute(
            "SELECT d.name FROM deals d "
            "JOIN contacts c ON c.deal_id = d.deal_id"
        )
        assert any("hash join" in step for step in result.plan)


class TestProjectionAndGrouping:
    def test_expression_projection(self, db):
        result = db.execute("SELECT cid * 2 + 1 AS x FROM contacts "
                            "ORDER BY cid LIMIT 2")
        assert result.column("x") == [3, 5]

    def test_group_by_with_join(self, db):
        result = db.execute(
            "SELECT d.name, COUNT(c.cid) AS n FROM deals d "
            "LEFT JOIN contacts c ON c.deal_id = d.deal_id "
            "GROUP BY d.deal_id ORDER BY n DESC, d.name"
        )
        assert result.rows == [("A", 2), ("B", 1), ("C", 1)]

    def test_group_by_multiple_keys(self, db):
        result = db.execute(
            "SELECT deal_id, role, COUNT(*) FROM contacts "
            "GROUP BY deal_id, role ORDER BY deal_id, role"
        )
        assert len(result.rows) == 4

    def test_having_with_expression(self, db):
        result = db.execute(
            "SELECT deal_id FROM contacts GROUP BY deal_id "
            "HAVING COUNT(*) * 10 >= 20"
        )
        assert result.column("deal_id") == ["d1"]

    def test_aggregate_expression_arithmetic(self, db):
        result = db.execute(
            "SELECT MAX(cid) - MIN(cid) FROM contacts"
        )
        assert result.scalar() == 3

    def test_functions_in_where(self, db):
        result = db.execute(
            "SELECT nm FROM contacts WHERE LOWER(nm) = 'sam' "
            "AND deal_id = 'd1'"
        )
        assert result.column("nm") == ["Sam"]

    def test_distinct_with_order_and_limit(self, db):
        result = db.execute(
            "SELECT DISTINCT nm FROM contacts ORDER BY nm LIMIT 2"
        )
        assert result.column("nm") == ["Jane", "Sam"]


class TestErrors:
    def test_unknown_column_in_projection(self, db):
        with pytest.raises(ProgrammingError):
            db.execute("SELECT ghost FROM deals")

    def test_unknown_alias_star(self, db):
        with pytest.raises(ProgrammingError):
            db.execute("SELECT z.* FROM deals d")

    def test_ambiguous_unqualified_column(self, db):
        with pytest.raises(ProgrammingError, match="ambiguous"):
            db.execute(
                "SELECT deal_id FROM deals d "
                "JOIN contacts c ON c.deal_id = d.deal_id"
            )


class TestExecutorEdgeCases:
    """Result-shape edge cases the optimized paths must not disturb."""

    def test_grouped_order_by_aggregate_alias(self, db):
        result = db.execute(
            "SELECT deal_id, COUNT(*) n FROM contacts "
            "GROUP BY deal_id ORDER BY n DESC, deal_id"
        )
        assert result.rows == [("d1", 2), ("d2", 1), ("d3", 1)]

    def test_grouped_order_by_alias_with_limit(self, db):
        result = db.execute(
            "SELECT deal_id, COUNT(*) n FROM contacts "
            "GROUP BY deal_id ORDER BY n DESC, deal_id LIMIT 1"
        )
        assert result.rows == [("d1", 2)]

    def test_distinct_limit_offset_interplay(self, db):
        full = db.execute("SELECT DISTINCT role FROM contacts").column("role")
        paged = db.execute(
            "SELECT DISTINCT role FROM contacts LIMIT 2 OFFSET 1"
        ).column("role")
        assert paged == full[1:3]

    def test_null_join_keys_never_match(self, db):
        db.execute("INSERT INTO contacts VALUES (9, NULL, 'Ghost', 'DPE')")
        try:
            result = db.execute(
                "SELECT c.nm FROM deals d "
                "JOIN contacts c ON c.deal_id = d.deal_id"
            )
            assert "Ghost" not in result.column("nm")
            left = db.execute(
                "SELECT c.nm, d.name FROM contacts c "
                "LEFT JOIN deals d ON d.deal_id = c.deal_id "
                "WHERE c.cid = 9"
            )
            # NULL key keeps the left row but never finds a partner.
            assert left.rows == [("Ghost", None)]
        finally:
            db.execute("DELETE FROM contacts WHERE cid = 9")

    def test_left_join_predicate_pushdown_soundness(self, db):
        # d3 has contacts but none named Sam; a naive pre-join filter on
        # contacts would null-extend d3 and wrongly surface it here.
        result = db.execute(
            "SELECT d.deal_id FROM deals d "
            "LEFT JOIN contacts c ON c.deal_id = d.deal_id "
            "WHERE c.nm = 'Sam' ORDER BY d.deal_id"
        )
        assert result.column("deal_id") == ["d1", "d2"]
