"""Integration-level tests for Database: SQL execution, transactions, FKs."""

import pytest

from repro.db import Database
from repro.errors import (
    IntegrityError,
    ProgrammingError,
    SchemaError,
    TransactionError,
)


@pytest.fixture
def db():
    database = Database()
    database.execute(
        "CREATE TABLE deals (deal_id TEXT, name TEXT NOT NULL, "
        "value REAL, industry TEXT, PRIMARY KEY (deal_id))"
    )
    database.execute(
        "CREATE TABLE people (pid INTEGER, deal_id TEXT, name TEXT, "
        "role TEXT, PRIMARY KEY (pid), "
        "FOREIGN KEY (deal_id) REFERENCES deals (deal_id))"
    )
    database.execute(
        "INSERT INTO deals VALUES "
        "('d1', 'DEAL A', 120.0, 'Banking'), "
        "('d2', 'DEAL B', 45.0, 'Insurance'), "
        "('d3', 'DEAL C', 80.0, 'Insurance')"
    )
    database.execute(
        "INSERT INTO people VALUES "
        "(1, 'd1', 'Sam White', 'CSE'), "
        "(2, 'd1', 'Jane Doe', 'TSA'), "
        "(3, 'd2', 'Sam White', 'CSE')"
    )
    return database


class TestCatalog:
    def test_table_names(self, db):
        assert db.table_names == ["deals", "people"]

    def test_duplicate_table(self, db):
        with pytest.raises(SchemaError):
            db.execute("CREATE TABLE deals (x TEXT)")

    def test_unknown_table(self, db):
        with pytest.raises(ProgrammingError):
            db.execute("SELECT * FROM nope")

    def test_drop_respects_references(self, db):
        with pytest.raises(IntegrityError):
            db.execute("DROP TABLE deals")
        db.execute("DROP TABLE people")
        db.execute("DROP TABLE deals")
        assert db.table_names == []

    def test_fk_must_reference_primary_key(self, db):
        with pytest.raises(SchemaError):
            db.execute(
                "CREATE TABLE x (a TEXT, FOREIGN KEY (a) "
                "REFERENCES deals (name))"
            )

    def test_fk_to_unknown_table(self):
        db = Database()
        with pytest.raises(SchemaError):
            db.execute(
                "CREATE TABLE x (a TEXT, FOREIGN KEY (a) "
                "REFERENCES ghosts (id))"
            )


class TestDml:
    def test_insert_returns_rowcount(self, db):
        result = db.execute(
            "INSERT INTO deals VALUES ('d4', 'DEAL D', 1.0, 'Retail')"
        )
        assert result.scalar() == 1

    def test_multi_row_insert_rowcount(self, db):
        result = db.execute(
            "INSERT INTO deals VALUES ('d5', 'E', 1.0, 'X'), "
            "('d6', 'F', 2.0, 'Y')"
        )
        assert result.scalar() == 2

    def test_insert_with_params(self, db):
        db.execute(
            "INSERT INTO deals VALUES (?, ?, ?, ?)",
            ["d7", "DEAL G", 9.0, "Telecom"],
        )
        row = db.query_one("SELECT name FROM deals WHERE deal_id = 'd7'")
        assert row == {"name": "DEAL G"}

    def test_update_rowcount_and_effect(self, db):
        result = db.execute(
            "UPDATE deals SET value = value * 2 WHERE industry = 'Insurance'"
        )
        assert result.scalar() == 2
        assert db.execute(
            "SELECT value FROM deals WHERE deal_id = 'd2'"
        ).scalar() == 90.0

    def test_delete_with_where(self, db):
        db.execute("DELETE FROM people WHERE deal_id = 'd1'")
        assert db.execute("SELECT COUNT(*) FROM people").scalar() == 1

    def test_update_plan_uses_primary_key(self, db):
        result = db.execute(
            "UPDATE deals SET value = 1.0 WHERE deal_id = 'd2'"
        )
        assert result.scalar() == 1
        assert any("index lookup pk_deals" in line for line in result.plan)

    def test_delete_plan_uses_index(self, db):
        db.table("people").create_index("ix_people_deal", ("deal_id",))
        result = db.execute("DELETE FROM people WHERE deal_id = 'd1'")
        assert result.scalar() == 2
        assert any("ix_people_deal" in line for line in result.plan)

    def test_update_plan_full_scan_without_index(self, db):
        result = db.execute(
            "UPDATE deals SET value = 0.0 WHERE industry = 'Insurance'"
        )
        assert result.scalar() == 2
        assert any("full scan deals" in line for line in result.plan)

    def test_fk_insert_violation(self, db):
        with pytest.raises(IntegrityError, match="foreign key"):
            db.execute(
                "INSERT INTO people VALUES (9, 'ghost', 'X', 'CSE')"
            )

    def test_fk_null_allowed(self, db):
        db.execute("INSERT INTO people VALUES (9, NULL, 'X', 'CSE')")

    def test_fk_delete_restricted(self, db):
        with pytest.raises(IntegrityError, match="referenced"):
            db.execute("DELETE FROM deals WHERE deal_id = 'd1'")
        db.execute("DELETE FROM deals WHERE deal_id = 'd3'")  # unreferenced

    def test_fk_update_checked(self, db):
        with pytest.raises(IntegrityError):
            db.execute("UPDATE people SET deal_id = 'ghost' WHERE pid = 1")


class TestSelect:
    def test_where_with_params_uses_pk_index(self, db):
        result = db.execute(
            "SELECT name FROM deals WHERE deal_id = ?", ["d1"]
        )
        assert result.to_dicts() == [{"name": "DEAL A"}]
        assert any("index lookup" in step for step in result.plan)

    def test_join(self, db):
        result = db.execute(
            "SELECT d.name, p.name AS person FROM deals d "
            "JOIN people p ON p.deal_id = d.deal_id "
            "WHERE p.role = 'CSE' ORDER BY d.name"
        )
        assert result.to_dicts() == [
            {"name": "DEAL A", "person": "Sam White"},
            {"name": "DEAL B", "person": "Sam White"},
        ]

    def test_left_join_preserves_unmatched(self, db):
        result = db.execute(
            "SELECT d.deal_id, p.pid FROM deals d "
            "LEFT JOIN people p ON p.deal_id = d.deal_id "
            "ORDER BY d.deal_id"
        )
        assert ("d3", None) in result.rows

    def test_group_by_count(self, db):
        result = db.execute(
            "SELECT industry, COUNT(*) AS n FROM deals "
            "GROUP BY industry ORDER BY n DESC, industry"
        )
        assert result.rows == [("Insurance", 2), ("Banking", 1)]

    def test_having(self, db):
        result = db.execute(
            "SELECT industry FROM deals GROUP BY industry "
            "HAVING COUNT(*) > 1"
        )
        assert result.rows == [("Insurance",)]

    def test_aggregates_on_empty_input(self, db):
        result = db.execute(
            "SELECT COUNT(*), SUM(value), MIN(value) FROM deals "
            "WHERE industry = 'Nothing'"
        )
        assert result.rows == [(0, None, None)]

    def test_distinct(self, db):
        result = db.execute("SELECT DISTINCT name FROM people")
        assert sorted(result.column("name")) == ["Jane Doe", "Sam White"]

    def test_order_by_nulls_last(self, db):
        db.execute("INSERT INTO deals VALUES ('d9', 'Z', NULL, 'X')")
        values = db.execute(
            "SELECT value FROM deals ORDER BY value"
        ).column("value")
        assert values[-1] is None

    def test_limit_offset(self, db):
        result = db.execute(
            "SELECT deal_id FROM deals ORDER BY deal_id LIMIT 1 OFFSET 1"
        )
        assert result.rows == [("d2",)]

    def test_like(self, db):
        result = db.execute(
            "SELECT deal_id FROM deals WHERE industry LIKE 'insur%'"
        )
        assert sorted(result.column("deal_id")) == ["d2", "d3"]

    def test_in(self, db):
        result = db.execute(
            "SELECT COUNT(*) FROM deals WHERE deal_id IN ('d1', 'd3')"
        )
        assert result.scalar() == 2

    def test_scalar_shape_check(self, db):
        with pytest.raises(ProgrammingError):
            db.execute("SELECT * FROM deals").scalar()

    def test_query_one_none_when_empty(self, db):
        assert db.query_one("SELECT * FROM deals WHERE deal_id='x'") is None

    def test_range_uses_sorted_index(self, db):
        db.execute("CREATE INDEX ix_value ON deals (value)")
        result = db.execute("SELECT deal_id FROM deals WHERE value > 70")
        assert any("index range" in step for step in result.plan)
        assert sorted(result.column("deal_id")) == ["d1", "d3"]

    def test_column_accessor_unknown(self, db):
        with pytest.raises(ProgrammingError):
            db.execute("SELECT name FROM deals").column("nope")


class TestTransactions:
    def test_commit_persists(self, db):
        db.begin()
        db.execute("INSERT INTO deals VALUES ('dx', 'X', 1.0, 'Y')")
        db.commit()
        assert db.execute("SELECT COUNT(*) FROM deals").scalar() == 4

    def test_rollback_reverts_everything(self, db):
        db.begin()
        db.execute("INSERT INTO deals VALUES ('dx', 'X', 1.0, 'Y')")
        db.execute("UPDATE deals SET value = 0 WHERE deal_id = 'd1'")
        db.execute("DELETE FROM people WHERE pid = 3")
        db.rollback()
        assert db.execute("SELECT COUNT(*) FROM deals").scalar() == 3
        assert db.execute(
            "SELECT value FROM deals WHERE deal_id = 'd1'"
        ).scalar() == 120.0
        assert db.execute("SELECT COUNT(*) FROM people").scalar() == 3

    def test_rollback_restores_index_state(self, db):
        db.begin()
        db.execute("DELETE FROM people WHERE pid = 1")
        db.rollback()
        result = db.execute("SELECT name FROM people WHERE pid = 1")
        assert result.to_dicts() == [{"name": "Sam White"}]
        assert any("index lookup" in step for step in result.plan)

    def test_context_manager_rolls_back_on_error(self, db):
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.execute("DELETE FROM people")
                raise RuntimeError("boom")
        assert db.execute("SELECT COUNT(*) FROM people").scalar() == 3
        assert not db.in_transaction

    def test_nested_begin_rejected(self, db):
        db.begin()
        with pytest.raises(TransactionError):
            db.begin()
        db.rollback()

    def test_commit_without_begin(self, db):
        with pytest.raises(TransactionError):
            db.commit()

    def test_rollback_without_begin(self, db):
        with pytest.raises(TransactionError):
            db.rollback()
