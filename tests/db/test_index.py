"""Unit and property tests for hash and sorted indexes."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.db import HashIndex, SortedIndex
from repro.errors import IntegrityError


class TestHashIndex:
    def test_lookup_after_insert(self):
        index = HashIndex("i", ("a",))
        index.insert(("x",), 1)
        index.insert(("x",), 2)
        assert index.lookup(("x",)) == {1, 2}
        assert index.lookup(("y",)) == set()

    def test_delete(self):
        index = HashIndex("i", ("a",))
        index.insert(("x",), 1)
        index.delete(("x",), 1)
        assert index.lookup(("x",)) == set()
        assert len(index) == 0

    def test_delete_missing_raises(self):
        index = HashIndex("i", ("a",))
        with pytest.raises(KeyError):
            index.delete(("x",), 1)

    def test_unique_violation(self):
        index = HashIndex("i", ("a",), unique=True)
        index.insert(("x",), 1)
        with pytest.raises(IntegrityError):
            index.insert(("x",), 2)

    def test_unique_allows_nulls(self):
        index = HashIndex("i", ("a",), unique=True)
        index.insert((None,), 1)
        index.insert((None,), 2)  # SQL: NULLs don't collide
        assert index.lookup((None,)) == {1, 2}

    def test_would_violate_with_ignore(self):
        index = HashIndex("i", ("a",), unique=True)
        index.insert(("x",), 1)
        assert index.would_violate(("x",))
        assert not index.would_violate(("x",), ignore_rowid=1)
        assert not index.would_violate(("y",))

    def test_needs_columns(self):
        with pytest.raises(ValueError):
            HashIndex("i", (), unique=False)

    def test_distinct_keys(self):
        index = HashIndex("i", ("a",))
        index.insert(("x",), 1)
        index.insert(("x",), 2)
        index.insert(("y",), 3)
        assert index.distinct_keys == 2


class TestSortedIndex:
    def make(self, values):
        index = SortedIndex("i", ("a",))
        for rowid, value in enumerate(values, start=1):
            index.insert((value,), rowid)
        return index

    def test_range_inclusive(self):
        index = self.make([10, 20, 30, 40])
        assert list(index.range((20,), (30,))) == [2, 3]

    def test_range_exclusive(self):
        index = self.make([10, 20, 30, 40])
        assert list(index.range((20,), (30,), False, False)) == []
        assert list(index.range((10,), (40,), False, False)) == [2, 3]

    def test_open_ended_ranges(self):
        index = self.make([10, 20, 30])
        assert list(index.range(None, (20,))) == [1, 2]
        assert list(index.range((20,), None)) == [2, 3]
        assert list(index.range(None, None)) == [1, 2, 3]

    def test_nulls_excluded_from_range(self):
        index = SortedIndex("i", ("a",))
        index.insert((None,), 1)
        index.insert((5,), 2)
        assert list(index.range(None, None)) == [2]
        assert index.lookup((None,)) == {1}

    def test_ordered_rowids(self):
        index = self.make([30, 10, 20])
        assert list(index.ordered_rowids()) == [2, 3, 1]
        assert list(index.ordered_rowids(descending=True)) == [1, 3, 2]

    def test_delete_keeps_order(self):
        index = self.make([10, 20, 30])
        index.delete((20,), 2)
        assert list(index.ordered_rowids()) == [1, 3]

    @given(st.lists(st.integers(-50, 50), max_size=60))
    def test_range_matches_bruteforce(self, values):
        index = SortedIndex("i", ("a",))
        for rowid, value in enumerate(values):
            index.insert((value,), rowid)
        low, high = -10, 10
        expected = sorted(
            rowid for rowid, v in enumerate(values) if low <= v <= high
        )
        assert sorted(index.range((low,), (high,))) == expected

    @given(st.lists(st.tuples(st.integers(0, 20), st.booleans()), max_size=50))
    def test_insert_delete_consistency(self, operations):
        """Interleaved inserts/deletes never corrupt the sorted view."""
        index = SortedIndex("i", ("a",))
        live = {}
        next_rowid = 0
        for value, is_insert in operations:
            if is_insert or value not in live:
                index.insert((value,), next_rowid)
                live.setdefault(value, set()).add(next_rowid)
                next_rowid += 1
            else:
                rowid = live[value].pop()
                if not live[value]:
                    del live[value]
                index.delete((value,), rowid)
        expected = sorted(
            rowid for rowids in live.values() for rowid in rowids
        )
        assert sorted(index.range(None, None)) == expected
        assert len(index) == len(expected)
