"""Unit and property tests for database JSON persistence."""

import datetime

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import (
    Database,
    dump_database,
    dumps_database,
    load_database,
    loads_database,
)
from repro.errors import DatabaseError


def make_db():
    db = Database()
    db.execute(
        "CREATE TABLE deals (deal_id TEXT, name TEXT NOT NULL, "
        "value REAL DEFAULT 1.5, started DATE, flag BOOLEAN, "
        "PRIMARY KEY (deal_id))"
    )
    db.execute(
        "CREATE TABLE contacts (cid INTEGER, deal_id TEXT, nm TEXT, "
        "PRIMARY KEY (cid), "
        "FOREIGN KEY (deal_id) REFERENCES deals (deal_id))"
    )
    db.execute("CREATE INDEX ix_value ON deals (value)")
    db.execute(
        "INSERT INTO deals VALUES "
        "('d1', 'A', 2.0, '2006-01-05', TRUE), "
        "('d2', 'B', NULL, NULL, FALSE)"
    )
    db.execute("INSERT INTO contacts VALUES (1, 'd1', 'Sam')")
    return db


class TestRoundtrip:
    def test_rows_survive(self):
        restored = loads_database(dumps_database(make_db()))
        assert restored.execute("SELECT COUNT(*) FROM deals").scalar() == 2
        row = restored.query_one(
            "SELECT * FROM deals WHERE deal_id = 'd1'"
        )
        assert row["name"] == "A"
        assert row["value"] == 2.0
        assert row["started"] == datetime.date(2006, 1, 5)
        assert row["flag"] is True

    def test_nulls_survive(self):
        restored = loads_database(dumps_database(make_db()))
        row = restored.query_one(
            "SELECT * FROM deals WHERE deal_id = 'd2'"
        )
        assert row["value"] is None and row["started"] is None

    def test_constraints_survive(self):
        restored = loads_database(dumps_database(make_db()))
        from repro.errors import IntegrityError

        with pytest.raises(IntegrityError):
            restored.execute("INSERT INTO deals VALUES "
                             "('d1', 'dup', 1.0, NULL, TRUE)")
        with pytest.raises(IntegrityError):
            restored.execute("INSERT INTO contacts VALUES (9, 'ghost', 'x')")

    def test_secondary_indexes_survive(self):
        restored = loads_database(dumps_database(make_db()))
        result = restored.execute("SELECT deal_id FROM deals WHERE value > 1")
        assert any("index range ix_value" in step for step in result.plan)

    def test_fk_ordering_resolved(self):
        # Alphabetical order would load 'contacts' before 'deals'.
        restored = loads_database(dumps_database(make_db()))
        assert restored.execute(
            "SELECT COUNT(*) FROM contacts"
        ).scalar() == 1

    def test_defaults_survive(self):
        restored = loads_database(dumps_database(make_db()))
        restored.execute(
            "INSERT INTO deals (deal_id, name) VALUES ('d3', 'C')"
        )
        assert restored.execute(
            "SELECT value FROM deals WHERE deal_id = 'd3'"
        ).scalar() == 1.5

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "snapshot.json"
        dump_database(make_db(), path)
        restored = load_database(path)
        assert restored.table_names == ["contacts", "deals"]


class TestErrors:
    def test_invalid_json(self):
        with pytest.raises(DatabaseError):
            loads_database("{not json")

    def test_wrong_version(self):
        with pytest.raises(DatabaseError, match="version"):
            loads_database('{"version": 99, "tables": []}')

    def test_foreign_json_rejected(self):
        for payload in ('{"something": "else"}', "[1, 2, 3]", '"text"',
                        "42", "null"):
            with pytest.raises(DatabaseError, match="snapshot"):
                loads_database(payload)

    def test_checksum_mismatch_rejected(self):
        import json

        document = json.loads(dumps_database(make_db()))
        document["tables"][0]["rows"][0][1] = "tampered"
        with pytest.raises(DatabaseError, match="checksum"):
            loads_database(json.dumps(document))

    def test_missing_checksum_rejected(self):
        import json

        document = json.loads(dumps_database(make_db()))
        del document["checksum"]
        with pytest.raises(DatabaseError, match="checksum"):
            loads_database(json.dumps(document))

    def test_malformed_structure_raises_typed_error(self):
        # Structurally broken specs must never leak KeyError/TypeError.
        payloads = [
            '{"version": 1, "tables": [{}]}',
            '{"version": 1, "tables": [{"name": "t", "columns": 3, '
            '"primary_key": [], "unique": [], "foreign_keys": [], '
            '"indexes": [], "rows": []}]}',
            '{"version": 1, "tables": [{"name": "t", "columns": '
            '[{"name": "c", "dtype": "NOPE", "nullable": true, '
            '"default": null}], "primary_key": [], "unique": [], '
            '"foreign_keys": [], "indexes": [], "rows": []}]}',
        ]
        for payload in payloads:
            with pytest.raises(DatabaseError):
                loads_database(payload)

    def test_version1_snapshot_still_loads(self):
        import json

        document = json.loads(dumps_database(make_db()))
        del document["checksum"]
        document["version"] = 1
        restored = loads_database(json.dumps(document))
        assert restored.execute("SELECT COUNT(*) FROM deals").scalar() == 2

    def test_load_missing_file_raises_typed_error(self, tmp_path):
        with pytest.raises(DatabaseError, match="cannot read"):
            load_database(tmp_path / "absent.json")


class TestAtomicity:
    def test_dump_replaces_atomically(self, tmp_path):
        path = tmp_path / "snapshot.json"
        dump_database(make_db(), path)
        first = path.read_text()
        db = make_db()
        db.execute("INSERT INTO deals (deal_id, name) VALUES ('d9', 'Z')")
        dump_database(db, path)
        assert path.read_text() != first
        assert load_database(path).execute(
            "SELECT COUNT(*) FROM deals"
        ).scalar() == 3
        # No temp-file droppings next to the snapshot.
        assert [p.name for p in tmp_path.iterdir()] == ["snapshot.json"]

    def test_partial_file_never_parses(self, tmp_path):
        path = tmp_path / "snapshot.json"
        dump_database(make_db(), path)
        truncated = path.read_text()[:-40]
        path.write_text(truncated)
        with pytest.raises(DatabaseError):
            load_database(path)


class TestProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 50),
                st.one_of(st.none(), st.floats(-1e6, 1e6)),
                st.one_of(st.none(),
                          st.dates(datetime.date(1990, 1, 1),
                                   datetime.date(2030, 12, 31))),
            ),
            max_size=25,
            unique_by=lambda row: row[0],
        )
    )
    @settings(max_examples=30)
    def test_arbitrary_rows_roundtrip(self, rows):
        db = Database()
        db.execute("CREATE TABLE t (pk INTEGER, x REAL, d DATE, "
                   "PRIMARY KEY (pk))")
        for pk, x, d in rows:
            db.insert("t", {"pk": pk, "x": x, "d": d})
        restored = loads_database(dumps_database(db))
        original = sorted(db.execute("SELECT * FROM t").rows)
        loaded = sorted(restored.execute("SELECT * FROM t").rows)
        assert original == loaded
