"""Unit tests for expression evaluation and SQL NULL semantics."""

import pytest

from repro.db import (
    Arithmetic,
    ColumnRef,
    Comparison,
    FunctionCall,
    InList,
    IsNull,
    Like,
    Literal,
    LogicalAnd,
    LogicalNot,
    LogicalOr,
    Parameter,
)
from repro.errors import ProgrammingError

ROW = {"t.a": 5, "t.b": "hello", "t.c": None}


def lit(value):
    return Literal(value)


class TestBasics:
    def test_literal(self):
        assert lit(42).evaluate({}) == 42

    def test_column_qualified(self):
        assert ColumnRef("a", "t").evaluate(ROW) == 5

    def test_column_unqualified_resolves(self):
        assert ColumnRef("a").evaluate(ROW) == 5

    def test_column_unqualified_ambiguous(self):
        row = {"t.a": 1, "u.a": 2}
        with pytest.raises(ProgrammingError, match="ambiguous"):
            ColumnRef("a").evaluate(row)

    def test_unknown_column(self):
        with pytest.raises(ProgrammingError, match="unknown column"):
            ColumnRef("zzz").evaluate(ROW)

    def test_unbound_parameter_raises(self):
        with pytest.raises(ProgrammingError, match="unbound parameter"):
            Parameter(0).evaluate({})

    def test_parameter_binding(self):
        expr = Comparison("=", ColumnRef("a", "t"), Parameter(0))
        assert expr.bind([5]).evaluate(ROW) is True

    def test_parameter_missing_raises(self):
        with pytest.raises(ProgrammingError, match="parameter"):
            Parameter(2).bind([1])


class TestComparison:
    def test_operators(self):
        assert Comparison("=", lit(1), lit(1)).evaluate({}) is True
        assert Comparison("!=", lit(1), lit(2)).evaluate({}) is True
        assert Comparison("<", lit(1), lit(2)).evaluate({}) is True
        assert Comparison("<=", lit(2), lit(2)).evaluate({}) is True
        assert Comparison(">", lit(3), lit(2)).evaluate({}) is True
        assert Comparison(">=", lit(1), lit(2)).evaluate({}) is False

    def test_null_propagates(self):
        assert Comparison("=", ColumnRef("c", "t"), lit(1)).evaluate(ROW) is None

    def test_unknown_operator(self):
        with pytest.raises(ProgrammingError):
            Comparison("~", lit(1), lit(1))

    def test_incomparable_types(self):
        with pytest.raises(ProgrammingError):
            Comparison("<", lit(1), lit("x")).evaluate({})


class TestLogic:
    def test_three_valued_and(self):
        null = lit(None)
        assert LogicalAnd(lit(True), lit(True)).evaluate({}) is True
        assert LogicalAnd(lit(True), lit(False)).evaluate({}) is False
        assert LogicalAnd(lit(False), null).evaluate({}) is False
        assert LogicalAnd(lit(True), null).evaluate({}) is None
        assert LogicalAnd(null, null).evaluate({}) is None

    def test_three_valued_or(self):
        null = lit(None)
        assert LogicalOr(lit(False), lit(True)).evaluate({}) is True
        assert LogicalOr(lit(True), null).evaluate({}) is True
        assert LogicalOr(lit(False), null).evaluate({}) is None
        assert LogicalOr(lit(False), lit(False)).evaluate({}) is False

    def test_not(self):
        assert LogicalNot(lit(True)).evaluate({}) is False
        assert LogicalNot(lit(None)).evaluate({}) is None


class TestPredicates:
    def test_is_null(self):
        assert IsNull(ColumnRef("c", "t")).evaluate(ROW) is True
        assert IsNull(ColumnRef("a", "t")).evaluate(ROW) is False
        assert IsNull(ColumnRef("c", "t"), negated=True).evaluate(ROW) is False

    def test_in_list(self):
        expr = InList(ColumnRef("a", "t"), (lit(1), lit(5)))
        assert expr.evaluate(ROW) is True
        expr = InList(ColumnRef("a", "t"), (lit(1), lit(2)))
        assert expr.evaluate(ROW) is False

    def test_in_list_null_semantics(self):
        # 5 IN (1, NULL) is NULL; 5 NOT IN (1, NULL) is NULL.
        expr = InList(lit(5), (lit(1), lit(None)))
        assert expr.evaluate({}) is None
        expr = InList(lit(5), (lit(1), lit(None)), negated=True)
        assert expr.evaluate({}) is None
        # But 5 IN (5, NULL) is TRUE.
        expr = InList(lit(5), (lit(5), lit(None)))
        assert expr.evaluate({}) is True

    def test_like_wildcards(self):
        assert Like(lit("End User Services"), lit("%user%")).evaluate({}) is True
        assert Like(lit("deal"), lit("d_al")).evaluate({}) is True
        assert Like(lit("deal"), lit("d_l")).evaluate({}) is False

    def test_like_case_insensitive(self):
        assert Like(lit("ABC"), lit("abc")).evaluate({}) is True

    def test_like_escapes_regex_chars(self):
        assert Like(lit("a.b"), lit("a.b")).evaluate({}) is True
        assert Like(lit("axb"), lit("a.b")).evaluate({}) is False

    def test_like_null(self):
        assert Like(lit(None), lit("%")).evaluate({}) is None

    def test_like_requires_text(self):
        with pytest.raises(ProgrammingError):
            Like(lit(5), lit("%")).evaluate({})


class TestArithmeticAndFunctions:
    def test_arithmetic(self):
        assert Arithmetic("+", lit(2), lit(3)).evaluate({}) == 5
        assert Arithmetic("-", lit(2), lit(3)).evaluate({}) == -1
        assert Arithmetic("*", lit(2), lit(3)).evaluate({}) == 6
        assert Arithmetic("/", lit(6), lit(3)).evaluate({}) == 2

    def test_division_by_zero_is_null(self):
        assert Arithmetic("/", lit(1), lit(0)).evaluate({}) is None

    def test_string_concat_via_plus(self):
        assert Arithmetic("+", lit("a"), lit("b")).evaluate({}) == "ab"

    def test_null_propagates(self):
        assert Arithmetic("+", lit(None), lit(1)).evaluate({}) is None

    def test_functions(self):
        assert FunctionCall("lower", (lit("ABC"),)).evaluate({}) == "abc"
        assert FunctionCall("upper", (lit("abc"),)).evaluate({}) == "ABC"
        assert FunctionCall("length", (lit("abcd"),)).evaluate({}) == 4
        assert FunctionCall("trim", (lit(" x "),)).evaluate({}) == "x"
        assert FunctionCall("abs", (lit(-3),)).evaluate({}) == 3

    def test_unknown_function(self):
        with pytest.raises(ProgrammingError):
            FunctionCall("nope", (lit(1),))

    def test_wrong_arity(self):
        with pytest.raises(ProgrammingError):
            FunctionCall("lower", (lit("a"), lit("b")))


class TestReferences:
    def test_references_collected(self):
        expr = LogicalAnd(
            Comparison("=", ColumnRef("a", "t"), lit(1)),
            Like(ColumnRef("b", "t"), lit("%")),
        )
        assert set(expr.references()) == {"t.a", "t.b"}
