"""Stateful property test: rolled-back transactions are invisible.

Random interleavings of inserts, updates and deletes run inside a
transaction that is then rolled back; the database state (rows AND every
index) must be byte-identical to the pre-transaction snapshot.  This is
the invariant the undo log exists for.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import Database
from repro.errors import DatabaseError


def build_db(rows):
    db = Database()
    db.execute("CREATE TABLE t (pk INTEGER, v INTEGER, s TEXT, "
               "PRIMARY KEY (pk))")
    db.execute("CREATE INDEX ix_v ON t (v)")
    for pk, v, s in rows:
        db.insert("t", {"pk": pk, "v": v, "s": s})
    return db


def snapshot(db):
    rows = sorted(db.execute("SELECT * FROM t").rows)
    table = db.table("t")
    index_state = {
        name: sorted(
            (key, tuple(sorted(index.lookup(key))))
            for key in {table.schema.key_of(row, index.columns)
                        for _, row in table.scan()}
        )
        for name, index in table.indexes.items()
    }
    return rows, index_state


initial_rows = st.lists(
    st.tuples(st.integers(0, 30), st.integers(-5, 5),
              st.sampled_from(["a", "b", "c"])),
    max_size=15,
    unique_by=lambda row: row[0],
)

operations = st.lists(
    st.tuples(
        st.sampled_from(["insert", "update", "delete"]),
        st.integers(0, 30),
        st.integers(-5, 5),
    ),
    max_size=20,
)


class TestRollbackInvariance:
    @given(initial_rows, operations)
    @settings(max_examples=50)
    def test_rollback_restores_rows_and_indexes(self, rows, ops):
        db = build_db(rows)
        before = snapshot(db)
        db.begin()
        for op, pk, v in ops:
            try:
                if op == "insert":
                    db.execute("INSERT INTO t VALUES (?, ?, 'x')", [pk, v])
                elif op == "update":
                    db.execute("UPDATE t SET v = ? WHERE pk = ?", [v, pk])
                else:
                    db.execute("DELETE FROM t WHERE pk = ?", [pk])
            except DatabaseError:
                # Constraint violations are fine; the statement must
                # simply leave no partial effects behind.
                pass
        db.rollback()
        assert snapshot(db) == before

    @given(initial_rows, operations)
    @settings(max_examples=30)
    def test_commit_then_reexecute_matches_no_transaction(self, rows, ops):
        """Committed transactions behave exactly like plain statements."""
        def run(db, use_transaction):
            if use_transaction:
                db.begin()
            for op, pk, v in ops:
                try:
                    if op == "insert":
                        db.execute("INSERT INTO t VALUES (?, ?, 'x')",
                                   [pk, v])
                    elif op == "update":
                        db.execute("UPDATE t SET v = ? WHERE pk = ?",
                                   [v, pk])
                    else:
                        db.execute("DELETE FROM t WHERE pk = ?", [pk])
                except DatabaseError:
                    pass
            if use_transaction:
                db.commit()
            return snapshot(db)

        assert run(build_db(rows), True) == run(build_db(rows), False)
