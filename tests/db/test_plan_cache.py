"""Prepared-statement/plan cache: hits, DDL invalidation, eviction."""

import pytest

from repro import obs
from repro.db import Database, PlannerOptions
from repro.db.database import _plan_cache_capacity


@pytest.fixture
def registry():
    with obs.use_registry() as fresh:
        yield fresh


@pytest.fixture
def db():
    # Capacity pinned by argument so the suite still exercises the
    # cache when CI exports REPRO_DB_PLAN_CACHE=0.
    database = Database(plan_cache=128)
    database.execute(
        "CREATE TABLE deals (deal_id TEXT, industry TEXT, value REAL, "
        "PRIMARY KEY (deal_id))"
    )
    database.execute(
        "INSERT INTO deals VALUES ('d1', 'bank', 10.0), "
        "('d2', 'auto', 20.0), ('d3', 'bank', 30.0)"
    )
    return database


class TestCacheHits:
    def test_repeated_select_hits_cache(self, db, registry):
        sql = "SELECT deal_id FROM deals WHERE industry = ?"
        first = db.execute(sql, ["bank"])
        second = db.execute(sql, ["bank"])
        assert first.rows == second.rows == [("d1",), ("d3",)]
        assert registry.counter("db.stmt_cache.misses").value == 1
        assert registry.counter("db.stmt_cache.hits").value == 1

    def test_cached_plan_respects_new_params(self, db, registry):
        sql = "SELECT deal_id FROM deals WHERE industry = ? ORDER BY deal_id"
        assert db.execute(sql, ["bank"]).column("deal_id") == ["d1", "d3"]
        assert db.execute(sql, ["auto"]).column("deal_id") == ["d2"]
        assert registry.counter("db.stmt_cache.hits").value == 1

    def test_whitespace_variants_are_distinct_entries(self, db, registry):
        db.execute("SELECT deal_id FROM deals")
        db.execute("SELECT  deal_id  FROM deals")
        assert registry.counter("db.stmt_cache.misses").value == 2
        assert registry.counter("db.stmt_cache.hits").value == 0

    def test_non_select_statements_cache_too(self, db, registry):
        sql = "UPDATE deals SET value = ? WHERE deal_id = ?"
        db.execute(sql, [11.0, "d1"])
        db.execute(sql, [12.0, "d1"])
        assert registry.counter("db.stmt_cache.hits").value == 1
        assert db.execute(
            "SELECT value FROM deals WHERE deal_id = 'd1'"
        ).scalar() == 12.0

    def test_results_are_fresh_objects_per_execution(self, db):
        sql = "SELECT deal_id FROM deals ORDER BY deal_id"
        first = db.execute(sql)
        second = db.execute(sql)
        assert first.rows is not second.rows
        assert first.plan is not second.plan
        first.rows.append(("tampered",))
        assert db.execute(sql).rows == [("d1",), ("d2",), ("d3",)]


class TestInvalidation:
    def test_create_index_invalidates_cached_plan(self, db, registry):
        sql = "SELECT deal_id FROM deals WHERE industry = 'bank'"
        before = db.execute(sql)
        assert "full scan deals" in before.plan
        db.execute("CREATE INDEX ix_deals_industry ON deals (industry)")
        after = db.execute(sql)
        assert any("ix_deals_industry" in line for line in after.plan)
        assert before.rows == after.rows
        assert registry.counter("db.stmt_cache.invalidations").value >= 1

    def test_direct_table_create_index_bumps_epoch(self, db):
        # The intranet directory creates indexes on tables directly,
        # bypassing SQL DDL; cached plans must still re-plan.
        sql = "SELECT deal_id FROM deals WHERE industry = 'auto'"
        db.execute(sql)
        epoch = db.ddl_epoch
        db.table("deals").create_index("ix_direct", ("industry",))
        assert db.ddl_epoch > epoch
        assert any("ix_direct" in line for line in db.execute(sql).plan)

    def test_drop_table_invalidates(self, db):
        db.execute("SELECT deal_id FROM deals")
        epoch = db.ddl_epoch
        db.execute("CREATE TABLE aux (k INTEGER, PRIMARY KEY (k))")
        db.execute("DROP TABLE aux")
        assert db.ddl_epoch >= epoch + 2


class TestEvictionAndDisable:
    def test_lru_eviction_at_capacity(self, registry):
        database = Database(plan_cache=2)
        database.execute("CREATE TABLE t (k INTEGER, PRIMARY KEY (k))")
        database.execute("SELECT k FROM t")          # miss, cached
        database.execute("SELECT k FROM t WHERE k = 1")  # miss, cached
        database.execute("SELECT k FROM t WHERE k = 2")  # miss, evicts
        database.execute("SELECT k FROM t")          # miss again: evicted
        assert registry.counter("db.stmt_cache.evictions").value >= 1
        # 5 misses: CREATE TABLE takes a slot too, then the four above.
        assert registry.counter("db.stmt_cache.misses").value == 5
        assert registry.counter("db.stmt_cache.hits").value == 0

    def test_plan_cache_zero_disables(self, registry):
        database = Database(plan_cache=0)
        database.execute("CREATE TABLE t (k INTEGER, PRIMARY KEY (k))")
        database.execute("SELECT k FROM t")
        database.execute("SELECT k FROM t")
        assert "db.stmt_cache.hits" not in registry.snapshot()

    def test_env_capacity_parsing(self, monkeypatch):
        cases = {
            "": 128, "0": 0, "off": 0, "FALSE": 0, "no": 0,
            "64": 64, "bogus": 128, "-3": 0,
        }
        for raw, expected in cases.items():
            monkeypatch.setenv("REPRO_DB_PLAN_CACHE", raw)
            assert _plan_cache_capacity(None) == expected, raw
        assert _plan_cache_capacity(7) == 7

    def test_env_disable(self, monkeypatch, registry):
        monkeypatch.setenv("REPRO_DB_PLAN_CACHE", "off")
        database = Database()
        database.execute("CREATE TABLE t (k INTEGER, PRIMARY KEY (k))")
        database.execute("SELECT k FROM t")
        database.execute("SELECT k FROM t")
        assert "db.stmt_cache.hits" not in registry.snapshot()

    def test_naive_planner_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_DB_PLANNER", "naive")
        monkeypatch.delenv("REPRO_DB_PLAN_CACHE", raising=False)
        database = Database()
        database.execute("CREATE TABLE t (k INTEGER, v TEXT, PRIMARY KEY (k))")
        database.execute("INSERT INTO t VALUES (1, 'a'), (2, 'b')")
        result = database.execute("SELECT v FROM t WHERE k = 1")
        assert result.rows == [("a",)]
        assert database.planner_options == PlannerOptions.naive()
