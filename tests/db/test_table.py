"""Unit tests for heap tables and index maintenance."""

import pytest

from repro.db import Column, DataType, Table, TableSchema
from repro.errors import IntegrityError, ProgrammingError


def make_table(journal=None):
    schema = TableSchema(
        "deals",
        [
            Column("deal_id", DataType.TEXT),
            Column("name", DataType.TEXT, nullable=False),
            Column("value", DataType.REAL),
        ],
        primary_key=["deal_id"],
        unique=[["name"]],
    )
    return Table(schema, journal=journal)


class TestInsert:
    def test_insert_returns_increasing_rowids(self):
        table = make_table()
        first = table.insert({"deal_id": "d1", "name": "A"})
        second = table.insert({"deal_id": "d2", "name": "B"})
        assert second > first
        assert len(table) == 2

    def test_primary_key_enforced(self):
        table = make_table()
        table.insert({"deal_id": "d1", "name": "A"})
        with pytest.raises(IntegrityError, match="PRIMARY KEY"):
            table.insert({"deal_id": "d1", "name": "B"})

    def test_unique_constraint_enforced(self):
        table = make_table()
        table.insert({"deal_id": "d1", "name": "A"})
        with pytest.raises(IntegrityError, match="UNIQUE"):
            table.insert({"deal_id": "d2", "name": "A"})

    def test_failed_insert_leaves_table_unchanged(self):
        table = make_table()
        table.insert({"deal_id": "d1", "name": "A"})
        with pytest.raises(IntegrityError):
            table.insert({"deal_id": "d1", "name": "B"})
        assert len(table) == 1
        # Index must not contain a phantom entry for the rejected row.
        index = table.index_on(("name",))
        assert index.lookup(("B",)) == set()


class TestUpdateDelete:
    def test_update_changes_values_and_indexes(self):
        table = make_table()
        rowid = table.insert({"deal_id": "d1", "name": "A", "value": 1.0})
        table.update(rowid, {"name": "Z"})
        assert table.row(rowid)[1] == "Z"
        index = table.index_on(("name",))
        assert index.lookup(("A",)) == set()
        assert index.lookup(("Z",)) == {rowid}

    def test_update_unique_violation_rolls_back_nothing(self):
        table = make_table()
        table.insert({"deal_id": "d1", "name": "A"})
        rowid = table.insert({"deal_id": "d2", "name": "B"})
        with pytest.raises(IntegrityError):
            table.update(rowid, {"name": "A"})
        assert table.row(rowid)[1] == "B"

    def test_update_to_same_key_allowed(self):
        table = make_table()
        rowid = table.insert({"deal_id": "d1", "name": "A"})
        table.update(rowid, {"value": 5.0})  # name unchanged
        assert table.row(rowid)[2] == 5.0

    def test_update_unknown_column(self):
        table = make_table()
        rowid = table.insert({"deal_id": "d1", "name": "A"})
        with pytest.raises(IntegrityError):
            table.update(rowid, {"typo": 1})

    def test_delete_removes_from_indexes(self):
        table = make_table()
        rowid = table.insert({"deal_id": "d1", "name": "A"})
        table.delete(rowid)
        assert len(table) == 0
        assert table.index_on(("deal_id",)).lookup(("d1",)) == set()

    def test_delete_missing_row(self):
        with pytest.raises(ProgrammingError):
            make_table().delete(99)

    def test_rowids_not_reused_after_delete(self):
        table = make_table()
        rowid = table.insert({"deal_id": "d1", "name": "A"})
        table.delete(rowid)
        new_rowid = table.insert({"deal_id": "d2", "name": "B"})
        assert new_rowid != rowid


class TestSecondaryIndexes:
    def test_create_index_backfills(self):
        table = make_table()
        table.insert({"deal_id": "d1", "name": "A", "value": 10.0})
        table.insert({"deal_id": "d2", "name": "B", "value": 20.0})
        index = table.create_index("ix_value", ("value",))
        assert sorted(index.range((5.0,), (15.0,))) == [1]

    def test_duplicate_index_name_rejected(self):
        table = make_table()
        table.create_index("ix", ("value",))
        with pytest.raises(Exception):
            table.create_index("ix", ("name",))

    def test_index_on_unknown_column(self):
        with pytest.raises(Exception):
            make_table().create_index("ix", ("nope",))

    def test_index_on_exact_columns(self):
        table = make_table()
        assert table.index_on(("deal_id",)) is not None
        assert table.index_on(("value",)) is None

    def test_indexes_prefixed_by(self):
        table = make_table()
        table.create_index("ix2", ("value", "name"))
        assert [i.name for i in table.indexes_prefixed_by("value")] == ["ix2"]


class TestJournal:
    def test_journal_records_all_ops(self):
        log = []

        def journal(table, op, rowid, old, new):
            log.append((op, rowid, old, new))

        table = make_table(journal=journal)
        rowid = table.insert({"deal_id": "d1", "name": "A"})
        table.update(rowid, {"name": "B"})
        table.delete(rowid)
        assert [entry[0] for entry in log] == ["insert", "update", "delete"]
        assert log[0][3] is not None and log[0][2] is None
        assert log[2][2] is not None and log[2][3] is None

    def test_undo_roundtrip(self):
        table = make_table()
        rowid = table.insert({"deal_id": "d1", "name": "A"})
        old_row = table.row(rowid)
        table.update(rowid, {"name": "B"})
        table.undo_update(rowid, old_row)
        assert table.row(rowid) == old_row
        table.undo_insert(rowid)
        assert len(table) == 0
        table.undo_delete(rowid, old_row)
        assert table.row(rowid) == old_row


class TestScan:
    def test_scan_order_deterministic(self):
        table = make_table()
        ids = [
            table.insert({"deal_id": f"d{i}", "name": f"N{i}"})
            for i in range(5)
        ]
        assert [rowid for rowid, _ in table.scan()] == ids
