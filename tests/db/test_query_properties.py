"""Property-based tests: the engine agrees with brute-force Python.

Random small tables and predicates are executed both through the SQL
engine and through straightforward Python comprehensions; results must
match exactly.  This is the strongest correctness signal for the planner
(index pre-filtering must never change results).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import Database

values = st.one_of(st.integers(-20, 20), st.none())
rows = st.lists(
    st.tuples(values, values, st.sampled_from(["x", "y", "z", None])),
    min_size=0,
    max_size=30,
)


def build_db(data, with_index):
    db = Database()
    db.execute("CREATE TABLE t (pk INTEGER, a INTEGER, b INTEGER, c TEXT, "
               "PRIMARY KEY (pk))")
    if with_index:
        db.execute("CREATE INDEX ix_a ON t (a)")
    for position, (a, b, c) in enumerate(data):
        db.insert("t", {"pk": position, "a": a, "b": b, "c": c})
    return db


class TestEngineAgreesWithBruteForce:
    @given(rows, st.integers(-20, 20), st.booleans())
    @settings(max_examples=60)
    def test_equality_filter(self, data, needle, with_index):
        db = build_db(data, with_index)
        result = db.execute("SELECT pk FROM t WHERE a = ?", [needle])
        expected = sorted(
            position for position, (a, _, _) in enumerate(data) if a == needle
        )
        assert sorted(result.column("pk")) == expected

    @given(rows, st.integers(-20, 20), st.booleans())
    @settings(max_examples=60)
    def test_range_filter(self, data, bound, with_index):
        db = build_db(data, with_index)
        result = db.execute("SELECT pk FROM t WHERE a >= ?", [bound])
        expected = sorted(
            position
            for position, (a, _, _) in enumerate(data)
            if a is not None and a >= bound
        )
        assert sorted(result.column("pk")) == expected

    @given(rows)
    @settings(max_examples=40)
    def test_conjunction(self, data):
        db = build_db(data, True)
        result = db.execute(
            "SELECT pk FROM t WHERE a > 0 AND b < 5 AND c IS NOT NULL"
        )
        expected = sorted(
            position
            for position, (a, b, c) in enumerate(data)
            if a is not None and a > 0 and b is not None and b < 5
            and c is not None
        )
        assert sorted(result.column("pk")) == expected

    @given(rows)
    @settings(max_examples=40)
    def test_group_by_count_matches(self, data):
        db = build_db(data, False)
        result = db.execute(
            "SELECT c, COUNT(*) AS n FROM t GROUP BY c"
        )
        expected = {}
        for _, _, c in data:
            expected[c] = expected.get(c, 0) + 1
        assert dict(result.rows) == expected

    @given(rows)
    @settings(max_examples=40)
    def test_order_by_sorts_correctly(self, data):
        db = build_db(data, False)
        result = db.execute(
            "SELECT a FROM t WHERE a IS NOT NULL ORDER BY a"
        )
        column = result.column("a")
        assert column == sorted(column)

    @given(rows)
    @settings(max_examples=40)
    def test_sum_and_avg(self, data):
        db = build_db(data, False)
        result = db.execute("SELECT SUM(a), AVG(a) FROM t")
        present = [a for a, _, _ in data if a is not None]
        total, average = result.rows[0]
        if not present:
            assert total is None and average is None
        else:
            assert total == sum(present)
            assert abs(average - sum(present) / len(present)) < 1e-9

    @given(rows, rows)
    @settings(max_examples=30)
    def test_join_matches_nested_loops(self, left_data, right_data):
        db = Database()
        db.execute("CREATE TABLE l (pk INTEGER, k INTEGER, PRIMARY KEY (pk))")
        db.execute("CREATE TABLE r (pk INTEGER, k INTEGER, PRIMARY KEY (pk))")
        for position, (a, _, _) in enumerate(left_data):
            db.insert("l", {"pk": position, "k": a})
        for position, (a, _, _) in enumerate(right_data):
            db.insert("r", {"pk": position, "k": a})
        result = db.execute(
            "SELECT l.pk, r.pk AS rpk FROM l JOIN r ON l.k = r.k"
        )
        expected = sorted(
            (i, j)
            for i, (a, _, _) in enumerate(left_data)
            for j, (b, _, _) in enumerate(right_data)
            if a is not None and a == b
        )
        assert sorted(result.rows) == expected

    @given(rows)
    @settings(max_examples=30)
    def test_distinct_matches_set(self, data):
        db = build_db(data, False)
        result = db.execute("SELECT DISTINCT c FROM t")
        assert sorted(result.column("c"), key=str) == sorted(
            {c for _, _, c in data}, key=str
        )
